"""Tests for the pin-level timing graph."""

import numpy as np
import pytest

from repro.netlist import Netlist, generate_preset
from repro.timing import CELL_OUT, NET_SINK, SOURCE, build_timing_graph

from tests.conftest import make_toy_netlist


@pytest.fixture
def toy_graph():
    nl = make_toy_netlist()
    return nl, build_timing_graph(nl)


def test_node_kinds(toy_graph):
    nl, g = toy_graph
    kinds = {int(g.pin_ids[i]): g.kind[i] for i in range(g.n_nodes)}
    for port in nl.primary_inputs():
        assert kinds[port.pin] == SOURCE
    for port in nl.primary_outputs():
        assert kinds[port.pin] == NET_SINK
    for cell in nl.combinational_cells():
        assert kinds[cell.output_pin] == CELL_OUT
        for ip in cell.input_pins:
            assert kinds[ip] == NET_SINK
    for reg in nl.sequential_cells():
        assert kinds[reg.output_pin] == SOURCE  # D→Q arc is cut
        assert kinds[reg.input_pins[0]] == NET_SINK


def test_levels_are_topological(toy_graph):
    _, g = toy_graph
    for src, dst in zip(g.net_edge_src, g.net_edge_dst):
        assert g.level[src] < g.level[dst]
    for src, dst in zip(g.cell_edge_src, g.cell_edge_dst):
        assert g.level[src] < g.level[dst]


def test_levels_partition_nodes(toy_graph):
    _, g = toy_graph
    seen = np.concatenate(g.levels)
    assert sorted(seen) == list(range(g.n_nodes))


def test_level_is_longest_path_depth(toy_graph):
    """Kahn-wave levels equal 1 + max over predecessors."""
    _, g = toy_graph
    for v in range(g.n_nodes):
        preds = g.predecessors(v)
        if len(preds):
            assert g.level[v] == g.level[preds].max() + 1
        else:
            assert g.level[v] == 0


def test_predecessor_csr(toy_graph):
    nl, g = toy_graph
    g1 = next(c for c in nl.cells.values() if c.name == "g1")
    node = g.node_of[g1.output_pin]
    preds = {int(g.pin_ids[p]) for p in g.predecessors(node)}
    assert preds == set(g1.input_pins)


def test_endpoints_and_startpoints_mapped(toy_graph):
    nl, g = toy_graph
    assert {int(g.pin_ids[v]) for v in g.endpoints} == set(nl.endpoint_pins())
    assert {int(g.pin_ids[v])
            for v in g.startpoints} == set(nl.startpoint_pins())


def test_cycle_detection():
    nl = Netlist("cyclic")
    a = nl.add_cell("INV_X1")
    b = nl.add_cell("INV_X1")
    na = nl.create_net(a.output_pin)
    nb = nl.create_net(b.output_pin)
    nl.connect(na.nid, b.input_pins[0])
    nl.connect(nb.nid, a.input_pins[0])
    with pytest.raises(ValueError, match="cycle"):
        build_timing_graph(nl)


def test_generated_design_graph_consistency():
    nl = generate_preset("xgate", scale=0.25)
    g = build_timing_graph(nl)
    assert g.n_nodes == len(nl.pins)
    assert len(g.net_edge_src) == sum(1 for _ in nl.net_edges())
    assert len(g.cell_edge_src) == sum(1 for _ in nl.cell_edges())
    # Registers cut the graph: D pins are endpoints, Q pins sources.
    for reg in nl.sequential_cells():
        assert g.node_of[reg.output_pin] in set(g.startpoints)
