"""Tests: incremental STA must agree exactly with full STA."""

import numpy as np
import pytest

from repro.timing import PreRouteEstimator, build_timing_graph, run_sta
from repro.timing.incremental import IncrementalSTA


@pytest.fixture
def design(tiny_spec):
    from repro.netlist import generate_netlist
    from repro.placement import build_die, legalize, place

    nl = generate_netlist(tiny_spec)
    die = build_die(nl, tiny_spec)
    pl = place(nl, die)
    legalize(nl, pl)
    return nl, pl


def _full(nl, pl, period):
    return run_sta(build_timing_graph(nl), PreRouteEstimator(nl, pl), period)


def _assert_equal(inc_res, full_res):
    np.testing.assert_allclose(inc_res.arrival, full_res.arrival,
                               atol=1e-9)
    np.testing.assert_allclose(inc_res.slew, full_res.slew, atol=1e-9)
    finite = np.isfinite(full_res.required)
    np.testing.assert_allclose(inc_res.required[finite],
                               full_res.required[finite], atol=1e-9)
    assert inc_res.endpoint_slack == pytest.approx(full_res.endpoint_slack)


def test_initial_state_matches_full_sta(design):
    nl, pl = design
    inc = IncrementalSTA(nl, pl, clock_period=800.0)
    _assert_equal(inc.result, _full(nl, pl, 800.0))


def test_resize_refresh_matches_full_sta(design):
    nl, pl = design
    inc = IncrementalSTA(nl, pl, clock_period=800.0)
    cid = next(c.cid for c in nl.combinational_cells()
               if nl.cell_type(c.cid).drive == 1)
    kind = nl.cell_type(cid).kind.name
    inc.resize_cell(cid, f"{kind}_X8")
    got = inc.refresh()
    _assert_equal(got, _full(nl, pl, 800.0))
    assert inc.partial_updates == 1


def test_move_refresh_matches_full_sta(design):
    nl, pl = design
    inc = IncrementalSTA(nl, pl, clock_period=800.0)
    cid = sorted(nl.cells)[len(nl.cells) // 2]
    x, y = pl.position(cid)
    inc.move_cell(cid, x + 10.0, y + 5.0)
    got = inc.refresh()
    _assert_equal(got, _full(nl, pl, 800.0))


def test_sequence_of_edits(design):
    nl, pl = design
    inc = IncrementalSTA(nl, pl, clock_period=800.0)
    comb = [c.cid for c in nl.combinational_cells()][:5]
    for cid in comb:
        ctype = nl.cell_type(cid)
        bigger = nl.library.upsize(ctype)
        if bigger is not None:
            inc.resize_cell(cid, bigger.name)
        inc.refresh()
    _assert_equal(inc.result, _full(nl, pl, 800.0))
    assert inc.partial_updates >= 1


def test_refresh_without_edits_is_noop(design):
    nl, pl = design
    inc = IncrementalSTA(nl, pl, clock_period=800.0)
    before = inc.result
    assert inc.refresh() is before
    assert inc.partial_updates == 0


def test_rebuild_after_structural_edit(design):
    nl, pl = design
    from repro.opt.moves import insert_buffer
    from repro.placement import RowGrid

    inc = IncrementalSTA(nl, pl, clock_period=800.0)
    grid = RowGrid.from_placement(nl, pl)
    net = next(n for n in nl.nets.values() if len(n.sinks) >= 2)
    assert insert_buffer(nl, pl, grid, net.nid, [net.sinks[0]]) is not None
    got = inc.rebuild()
    _assert_equal(got, _full(nl, pl, 800.0))
    assert inc.full_rebuilds == 1


def test_resize_changes_downstream_timing(design):
    nl, pl = design
    inc = IncrementalSTA(nl, pl, clock_period=800.0)
    before = dict(inc.result.endpoint_arrival)
    # Upsize the driver of the worst endpoint's critical path head.
    ep = min(inc.result.endpoint_slack, key=inc.result.endpoint_slack.get)
    path = inc.result.critical_path(ep)
    cid = next(nl.pins[p].cell for p in path
               if nl.pins[p].cell is not None
               and not nl.cell_type(nl.pins[p].cell).is_sequential)
    ctype = nl.cell_type(cid)
    bigger = nl.library.upsize(ctype)
    if bigger is None:
        pytest.skip("cell already at max drive")
    inc.resize_cell(cid, bigger.name)
    after = inc.refresh().endpoint_arrival
    assert any(abs(after[p] - before[p]) > 1e-6 for p in after)
