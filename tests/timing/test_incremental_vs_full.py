"""Differential suite: incremental STA vs. full re-run after move sequences.

Property-style lockdown of the optimizer's central invariant: after *each*
edit in a seeded sequence of parameter-only moves (gate resizes and cell
moves — the edits :class:`IncrementalSTA` claims to handle without a
rebuild), every endpoint arrival and slack must match a from-scratch
:func:`run_sta` to 1e-6.  Runs over three design presets so level
structure, fanout profile and library usage all vary.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.netlist import DESIGN_PRESETS, generate_netlist
from repro.placement import build_die, legalize, place
from repro.timing import PreRouteEstimator, build_timing_graph, run_sta
from repro.timing.incremental import IncrementalSTA

PRESETS = [("xgate", 0.25), ("steelcore", 0.25), ("chacha", 0.2)]
N_MOVES = 8
TOL = 1e-6


def _make_design(name: str, scale: float):
    spec = DESIGN_PRESETS[name].scaled(scale)
    nl = generate_netlist(spec)
    die = build_die(nl, spec)
    pl = place(nl, die)
    legalize(nl, pl)
    return nl, pl


def _full_sta(nl, pl, period):
    return run_sta(build_timing_graph(nl), PreRouteEstimator(nl, pl), period)


def _assert_matches_full(inc_result, full_result, context: str) -> None:
    assert set(inc_result.endpoint_arrival) == set(
        full_result.endpoint_arrival), context
    for pid, arr in full_result.endpoint_arrival.items():
        assert inc_result.endpoint_arrival[pid] == pytest.approx(
            arr, abs=TOL), f"{context}: arrival mismatch at endpoint {pid}"
    for pid, slk in full_result.endpoint_slack.items():
        assert inc_result.endpoint_slack[pid] == pytest.approx(
            slk, abs=TOL), f"{context}: slack mismatch at endpoint {pid}"
    np.testing.assert_allclose(inc_result.arrival, full_result.arrival,
                               atol=TOL, err_msg=context)


def _apply_random_move(inc: IncrementalSTA, nl, pl, rng) -> str:
    """One seeded resize-or-move edit through the incremental API."""
    lib = nl.library
    if rng.random() < 0.5:
        # Resize: pick a combinational cell with a neighbouring drive.
        cells = sorted(c.cid for c in nl.combinational_cells())
        rng.shuffle(cells)
        for cid in cells:
            ctype = nl.cell_type(cid)
            target = lib.upsize(ctype) or lib.downsize(ctype)
            if target is not None:
                inc.resize_cell(cid, target.name)
                return f"resize {cid} -> {target.name}"
    # Move: jitter a random cell inside the die.
    cells = sorted(nl.cells)
    cid = cells[int(rng.integers(len(cells)))]
    x, y = pl.position(cid)
    die = pl.die
    nx = float(np.clip(x + rng.uniform(-40.0, 40.0), 0.0, die.width))
    ny = float(np.clip(y + rng.uniform(-40.0, 40.0), 0.0, die.height))
    inc.move_cell(cid, nx, ny)
    return f"move {cid} -> ({nx:.1f}, {ny:.1f})"


@pytest.mark.parametrize("name,scale", PRESETS)
def test_incremental_matches_full_after_each_move(name, scale):
    nl, pl = _make_design(name, scale)
    period = 800.0
    inc = IncrementalSTA(nl, pl, clock_period=period)
    _assert_matches_full(inc.result, _full_sta(nl, pl, period),
                         f"{name}: initial state")

    rng = np.random.default_rng(20230716)
    for step in range(N_MOVES):
        what = _apply_random_move(inc, nl, pl, rng)
        got = inc.refresh()
        want = _full_sta(nl, pl, period)
        _assert_matches_full(got, want, f"{name} step {step}: {what}")
    assert inc.partial_updates == N_MOVES
    assert inc.full_rebuilds == 0


@pytest.mark.parametrize("name,scale", PRESETS[:1])
def test_batched_moves_then_single_refresh(name, scale):
    """Several dirty edits folded into one refresh still match full STA."""
    nl, pl = _make_design(name, scale)
    period = 800.0
    inc = IncrementalSTA(nl, pl, clock_period=period)
    rng = np.random.default_rng(7)
    for _ in range(4):
        _apply_random_move(inc, nl, pl, rng)
    got = inc.refresh()
    _assert_matches_full(got, _full_sta(nl, pl, period), f"{name}: batched")
    assert inc.partial_updates == 1
