"""Partitioner invariants: coverage, halo discipline, determinism.

The streaming execution battery (bit-identity of the partitioned GNN
forward against the monolithic one) lives in
``tests/ml/test_partition_exec.py``; this file pins down the graph-level
partitioner itself.
"""

import numpy as np
import pytest

from repro.netlist import generate_preset
from repro.timing import (
    PartitionConfig,
    build_timing_graph,
    partition_graph,
    pins_for_budget,
)
from repro.timing.partition import _greedy_ranges, resolve_pins


@pytest.fixture(scope="module")
def graph():
    return build_timing_graph(generate_preset("steelcore", scale=0.4))


# ----------------------------------------------------------------------
# Config / knob resolution.
# ----------------------------------------------------------------------

def test_partition_config_resolution():
    assert PartitionConfig().resolve() is None
    assert PartitionConfig(partition_pins=500).resolve() == 500
    # Explicit pins win over a budget.
    assert PartitionConfig(partition_pins=500,
                           memory_budget_mb=1.0).resolve() == 500
    derived = PartitionConfig(memory_budget_mb=64, hidden=64).resolve()
    assert derived == pins_for_budget(64, hidden=64)


def test_partition_config_rejects_nonpositive():
    with pytest.raises(ValueError):
        PartitionConfig(partition_pins=0)
    with pytest.raises(ValueError):
        PartitionConfig(memory_budget_mb=-1.0)
    with pytest.raises(ValueError):
        PartitionConfig(hidden=0)


def test_resolve_pins_accepts_all_knob_forms():
    assert resolve_pins(None) is None
    assert resolve_pins(1234) == 1234
    assert resolve_pins(PartitionConfig(partition_pins=77)) == 77
    assert resolve_pins(PartitionConfig()) is None
    with pytest.raises(ValueError):
        resolve_pins(-3)


def test_pins_for_budget_monotone_and_floored():
    small = pins_for_budget(0.001, hidden=64)
    assert small == 256                      # floor: never degenerate chunks
    assert pins_for_budget(64, hidden=64) > pins_for_budget(8, hidden=64)
    # Wider hidden -> more bytes per pin -> fewer pins per MB.
    assert pins_for_budget(64, hidden=256) < pins_for_budget(64, hidden=64)


def test_greedy_ranges_respect_budget_and_cover():
    sizes = [10, 20, 5, 100, 3, 3]
    ranges = _greedy_ranges(sizes, 30)
    # Contiguous, ascending, covering every level exactly once.
    assert ranges[0][0] == 0 and ranges[-1][1] == len(sizes)
    for (a0, b0), (a1, b1) in zip(ranges, ranges[1:]):
        assert b0 == a1 and a0 < b0
    # An oversized level becomes its own chunk; others stay under budget.
    for a, b in ranges:
        total = sum(sizes[a:b])
        assert total <= 30 or b - a == 1


# ----------------------------------------------------------------------
# Graph partition invariants.
# ----------------------------------------------------------------------

@pytest.mark.parametrize("pins", [64, 500, 10**9])
def test_chunks_cover_all_nonsource_nodes_exactly_once(graph, pins):
    chunks = partition_graph(graph, pins)
    level = np.asarray(graph.level)
    covered = np.concatenate([c.nodes for c in chunks])
    expected = np.where(level > 0)[0]
    # Ascending within each chunk, chunks in ascending level order -> the
    # concatenation of a level-respecting partition is itself sorted
    # within each chunk and chunk-disjoint.
    assert len(covered) == len(np.unique(covered))
    assert np.array_equal(np.sort(covered), expected)
    for i, c in enumerate(chunks):
        assert c.index == i
        assert np.all(np.diff(c.nodes) > 0)
        assert c.n_pins == len(c.nodes)
    # Level ranges are contiguous and ascending.
    assert chunks[0].level_start == 1
    assert chunks[-1].level_stop == graph.n_levels
    for c0, c1 in zip(chunks, chunks[1:]):
        assert c0.level_stop == c1.level_start


def test_halo_nodes_come_from_strictly_earlier_chunks(graph):
    chunks = partition_graph(graph, 300)
    assert len(chunks) > 2, "budget too large to exercise halos"
    level = np.asarray(graph.level)
    chunk_of = np.full(graph.n_nodes, -1, dtype=np.int64)
    for c in chunks:
        chunk_of[c.nodes] = c.index
    pred_ptr = np.asarray(graph.pred_ptr)
    pred_idx = np.asarray(graph.pred_idx)
    saw_halo = False
    for c in chunks:
        assert np.all(np.diff(c.halo) > 0)          # id-sorted
        assert np.all(level[c.halo] > 0)            # level-0 is never halo
        assert not np.intersect1d(c.halo, c.nodes).size
        assert np.all(chunk_of[c.halo] < c.index)   # strictly earlier
        assert np.all(chunk_of[c.halo] >= 0)
        saw_halo = saw_halo or len(c.halo) > 0
        # Every read of the chunk resolves inside chunk ∪ halo ∪ level-0.
        reads = np.concatenate([pred_idx[pred_ptr[n]:pred_ptr[n + 1]]
                                for n in c.nodes])
        external = reads[(level[reads] > 0) & (chunk_of[reads] != c.index)]
        assert np.isin(external, c.halo).all()
    assert saw_halo, "multi-chunk partition produced no halo at all"


def test_huge_budget_collapses_to_one_haloless_chunk(graph):
    (chunk,) = partition_graph(graph, 10**9)
    assert chunk.level_start == 1 and chunk.level_stop == graph.n_levels
    assert len(chunk.halo) == 0


def test_unit_budget_gives_one_chunk_per_level(graph):
    chunks = partition_graph(graph, 1)
    assert len(chunks) == graph.n_levels - 1
    for c in chunks:
        assert c.level_stop == c.level_start + 1


def test_partition_is_deterministic(graph):
    a = partition_graph(graph, 250)
    b = partition_graph(graph, 250)
    assert len(a) == len(b)
    for ca, cb in zip(a, b):
        assert (ca.index, ca.level_start, ca.level_stop) == \
               (cb.index, cb.level_start, cb.level_stop)
        assert np.array_equal(ca.nodes, cb.nodes)
        assert np.array_equal(ca.halo, cb.halo)


def test_memory_budget_config_matches_explicit_pins(graph):
    cfg = PartitionConfig(memory_budget_mb=2.0, hidden=64)
    via_cfg = partition_graph(graph, cfg)
    via_pins = partition_graph(graph, cfg.resolve())
    assert [c.level_stop for c in via_cfg] == \
           [c.level_stop for c in via_pins]


def test_disabled_partition_is_rejected(graph):
    with pytest.raises(ValueError, match="enabled partition"):
        partition_graph(graph, None)
    with pytest.raises(ValueError, match="enabled partition"):
        partition_graph(graph, PartitionConfig())
