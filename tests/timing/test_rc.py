"""Tests for wire-length providers."""

import pytest

from repro.timing import PreRouteEstimator, RoutedLengths


def test_pre_route_estimator_is_manhattan(tiny_placed):
    nl, pl = tiny_placed
    est = PreRouteEstimator(nl, pl)
    drv, snk = next(iter(nl.net_edges()))
    (xd, yd) = pl.pin_position(nl, drv)
    (xs, ys) = pl.pin_position(nl, snk)
    assert est.length(drv, snk) == abs(xd - xs) + abs(yd - ys)


def test_routed_lengths_storage():
    r = RoutedLengths()
    r.set_length(1, 2, 12.5)
    assert r.length(1, 2) == 12.5
    with pytest.raises(KeyError):
        r.length(3, 4)


def test_estimator_symmetric(tiny_placed):
    nl, pl = tiny_placed
    est = PreRouteEstimator(nl, pl)
    drv, snk = next(iter(nl.net_edges()))
    assert est.length(drv, snk) == est.length(snk, drv)
