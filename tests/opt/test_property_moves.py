"""Property-based tests: random move sequences preserve netlist invariants.

Whatever the optimizer does — in any order — the netlist must stay a valid
DAG, endpoints must survive, and the placement must track the cells.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.netlist import DESIGN_PRESETS, generate_netlist
from repro.opt.moves import (
    clone_driver,
    decompose_gate,
    downsize_cell,
    insert_buffer,
    remap_cell,
    upsize_cell,
)
from repro.placement import Placement, RowGrid, build_die, legalize, place
from repro.timing import build_timing_graph

MOVES = ["upsize", "downsize", "remap", "decompose", "clone", "buffer"]


def _fresh_design():
    spec = DESIGN_PRESETS["xgate"].scaled(0.15)
    nl = generate_netlist(spec)
    die = build_die(nl, spec)
    pl = place(nl, die)
    legalize(nl, pl)
    return nl, pl


@settings(max_examples=15, deadline=None)
@given(st.lists(st.sampled_from(MOVES), min_size=1, max_size=12),
       st.integers(min_value=0, max_value=10_000))
def test_random_move_sequences_keep_invariants(moves, seed):
    nl, pl = _fresh_design()
    endpoints_before = set(nl.endpoint_pins())
    grid = RowGrid.from_placement(nl, pl)
    rng = np.random.default_rng(seed)

    for move in moves:
        comb = [c.cid for c in nl.combinational_cells()]
        if not comb:
            break
        cid = int(rng.choice(comb))
        if move == "upsize":
            upsize_cell(nl, cid)
        elif move == "downsize":
            downsize_cell(nl, cid)
        elif move == "remap":
            remap_cell(nl, pl, grid, cid)
        elif move == "decompose":
            decompose_gate(nl, pl, grid, cid)
        elif move == "clone":
            clone_driver(nl, pl, grid, cid)
        elif move == "buffer":
            out_net = nl.pins[nl.cells[cid].output_pin].net
            if out_net is not None and nl.nets[out_net].sinks:
                sink = nl.nets[out_net].sinks[0]
                insert_buffer(nl, pl, grid, out_net, [sink])

    # Invariants: structure valid, acyclic, endpoints intact, placement
    # covers exactly the existing cells.
    nl.check()
    build_timing_graph(nl)
    assert set(nl.endpoint_pins()) == endpoints_before
    assert set(pl.cell_xy) == set(nl.cells)
