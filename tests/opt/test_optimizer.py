"""Tests for the timing optimizer loop."""

import pytest

from repro.netlist import DESIGN_PRESETS, generate_netlist
from repro.opt import OptimizerConfig, TimingOptimizer, optimize
from repro.placement import Placement, build_die, legalize, place
from repro.timing import PreRouteEstimator, build_timing_graph, run_sta


@pytest.fixture(scope="module")
def optimized():
    spec = DESIGN_PRESETS["steelcore"].scaled(0.5)
    nl = generate_netlist(spec)
    die = build_die(nl, spec)
    pl = place(nl, die)
    legalize(nl, pl)
    g = build_timing_graph(nl)
    unconstrained = run_sta(g, PreRouteEstimator(nl, pl), clock_period=1.0)
    period = spec.clock_frac * unconstrained.max_arrival
    opt_nl = nl.clone()
    opt_pl = Placement(die=die, cell_xy=dict(pl.cell_xy))
    report = optimize(opt_nl, opt_pl, period)
    return nl, pl, opt_nl, opt_pl, report, period


def test_optimizer_improves_timing(optimized):
    _, _, _, _, report, _ = optimized
    assert report.wns_trajectory[-1] > report.wns_trajectory[0]
    assert report.tns_trajectory[-1] > report.tns_trajectory[0]


def test_optimizer_replaces_edges(optimized):
    _, _, _, _, report, _ = optimized
    assert 0.02 < report.net_replaced_ratio < 0.8
    assert 0.01 < report.cell_replaced_ratio < 0.6
    # Nets are replaced more than cells (paper Table I shape).
    assert report.net_replaced_ratio > report.cell_replaced_ratio


def test_optimizer_output_is_valid_netlist(optimized):
    _, _, opt_nl, opt_pl, _, _ = optimized
    opt_nl.check()
    build_timing_graph(opt_nl)  # still acyclic
    assert set(opt_pl.cell_xy) == set(opt_nl.cells)


def test_endpoints_never_replaced(optimized):
    nl, _, opt_nl, _, _, _ = optimized
    assert set(nl.endpoint_pins()) == set(opt_nl.endpoint_pins())


def test_original_netlist_untouched(optimized):
    nl, pl, opt_nl, _, _, _ = optimized
    assert len(nl.cells) != len(opt_nl.cells) or \
        sorted(c.type_name for c in nl.cells.values()) != \
        sorted(c.type_name for c in opt_nl.cells.values())
    nl.check()


def test_moves_recorded(optimized):
    _, _, _, _, report, _ = optimized
    assert sum(report.moves.values()) > 0
    assert set(report.moves) <= {"upsize", "downsize", "remap", "rewrite",
                                 "buffer", "shield", "decompose", "clone"}


def test_optimizer_deterministic():
    spec = DESIGN_PRESETS["xgate"].scaled(0.3)
    results = []
    for _ in range(2):
        nl = generate_netlist(spec)
        die = build_die(nl, spec)
        pl = place(nl, die)
        legalize(nl, pl)
        g = build_timing_graph(nl)
        period = 0.7 * run_sta(g, PreRouteEstimator(nl, pl), 1.0).max_arrival
        report = optimize(nl, pl, period)
        results.append((report.moves, report.wns_trajectory))
    assert results[0] == results[1]


def test_space_gate_blocks_in_full_layout():
    spec = DESIGN_PRESETS["xgate"].scaled(0.3)
    nl = generate_netlist(spec)
    die = build_die(nl, spec)
    pl = place(nl, die)
    legalize(nl, pl)
    opt = TimingOptimizer(nl, pl, OptimizerConfig())
    # Saturate the free-space map: every structural move must be gated off.
    opt._free[:, :] = 0.0
    assert not opt._gate(die.width / 2, die.height / 2)
