"""Tests for replaced-edge accounting."""

from repro.opt import OptReport, diff_replaced_edges
from repro.placement import RowGrid, Placement, Die
from repro.opt.moves import remap_cell

from tests.conftest import make_toy_netlist


def _placed_toy():
    nl = make_toy_netlist()
    die = Die(width=30.0, height=30.0)
    for port in nl.ports.values():
        die.port_positions[port.pin] = (0.0, 0.0)
    pl = Placement(die=die)
    for i, cid in enumerate(sorted(nl.cells)):
        pl.set_position(cid, 5.0 + 3 * i, 5.0)
    return nl, pl


def test_no_change_means_nothing_replaced():
    nl = make_toy_netlist()
    report = OptReport(design="toy")
    diff_replaced_edges(nl, nl.clone(), report)
    assert report.net_replaced_ratio == 0.0
    assert report.cell_replaced_ratio == 0.0
    assert report.n_input_net_edges == 6


def test_sizing_in_place_replaces_nothing():
    nl = make_toy_netlist()
    opt = nl.clone()
    g0 = next(c for c in opt.cells.values() if c.name == "g0")
    opt.change_cell_type(g0.cid, "AND2_X8")
    report = OptReport(design="toy")
    diff_replaced_edges(nl, opt, report)
    assert len(report.replaced_net_edges) == 0
    assert len(report.replaced_cell_edges) == 0


def test_remap_replaces_all_cell_arcs():
    nl, pl = _placed_toy()
    opt = nl.clone()
    opt_pl = Placement(die=pl.die, cell_xy=dict(pl.cell_xy))
    grid = RowGrid.from_placement(opt, opt_pl)
    g0 = next(c for c in opt.cells.values() if c.name == "g0")
    n_inputs = len(g0.input_pins)
    fanout = len(opt.nets[opt.pins[g0.output_pin].net].sinks)
    assert remap_cell(opt, opt_pl, grid, g0.cid) is not None
    report = OptReport(design="toy")
    diff_replaced_edges(nl, opt, report)
    assert len(report.replaced_cell_edges) == n_inputs
    assert len(report.replaced_net_edges) == n_inputs + fanout


def test_report_count_accumulates():
    report = OptReport(design="x")
    report.count("upsize")
    report.count("upsize", 2)
    assert report.moves == {"upsize": 3}
