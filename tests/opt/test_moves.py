"""Tests for optimizer moves."""

import pytest

from repro.netlist import DESIGN_PRESETS, generate_netlist
from repro.opt import (
    clone_driver,
    decompose_gate,
    downsize_cell,
    insert_buffer,
    remap_cell,
    upsize_cell,
)
from repro.placement import RowGrid, build_die, legalize, place


@pytest.fixture
def design():
    spec = DESIGN_PRESETS["xgate"].scaled(0.3)
    nl = generate_netlist(spec)
    die = build_die(nl, spec)
    pl = place(nl, die)
    legalize(nl, pl)
    grid = RowGrid.from_placement(nl, pl)
    return nl, pl, grid


def _some_cell(nl, min_inputs=1, max_drive=4, kinds=None):
    for cid in sorted(nl.cells):
        ct = nl.cell_type(cid)
        if ct.is_sequential:
            continue
        if ct.n_inputs < min_inputs or ct.drive > max_drive:
            continue
        if kinds and ct.kind.name not in kinds:
            continue
        if nl.pins[nl.cells[cid].output_pin].net is None:
            continue
        return cid
    raise AssertionError("no suitable cell found")


def test_upsize_downsize_roundtrip(design):
    nl, _, _ = design
    cid = _some_cell(nl)
    before = nl.cells[cid].type_name
    assert upsize_cell(nl, cid)
    assert nl.cell_type(cid).drive > nl.library.cell(before).drive
    assert downsize_cell(nl, cid)
    assert nl.cells[cid].type_name == before
    nl.check()


def test_remap_replaces_instance_preserves_connectivity(design):
    nl, pl, grid = design
    cid = _some_cell(nl)
    inst = nl.cells[cid]
    in_nets = [nl.pins[ip].net for ip in inst.input_pins]
    out_sinks = sorted(nl.nets[nl.pins[inst.output_pin].net].sinks)
    old_pins = set(inst.input_pins + [inst.output_pin])
    n_cells = len(nl.cells)

    new_cid = remap_cell(nl, pl, grid, cid)
    assert new_cid is not None and new_cid != cid
    assert cid not in nl.cells
    assert len(nl.cells) == n_cells
    new = nl.cells[new_cid]
    assert [nl.pins[ip].net for ip in new.input_pins] == in_nets
    assert sorted(nl.nets[nl.pins[new.output_pin].net].sinks) == out_sinks
    # All old pins are gone — the arcs are "replaced".
    assert not (old_pins & set(nl.pins))
    nl.check()


def test_remap_defaults_to_upsize(design):
    nl, pl, grid = design
    cid = _some_cell(nl, max_drive=2)
    drive = nl.cell_type(cid).drive
    new_cid = remap_cell(nl, pl, grid, cid)
    assert nl.cell_type(new_cid).drive == 2 * drive


def test_remap_rejects_sequential(design):
    nl, pl, grid = design
    reg = nl.sequential_cells()[0]
    assert remap_cell(nl, pl, grid, reg.cid) is None


def test_insert_buffer_rewires_sinks(design):
    nl, pl, grid = design
    # Find a net with ≥ 2 sinks.
    net = next(n for n in nl.nets.values() if len(n.sinks) >= 2)
    moved = list(net.sinks[:1])
    n_sinks_before = len(net.sinks)
    buf_cid = insert_buffer(nl, pl, grid, net.nid, moved)
    assert buf_cid is not None
    buf = nl.cells[buf_cid]
    assert nl.cell_type(buf_cid).kind.name == "BUF"
    # Original net lost the moved sink, gained the buffer input.
    assert len(net.sinks) == n_sinks_before
    assert buf.input_pins[0] in net.sinks
    new_net = nl.nets[nl.pins[buf.output_pin].net]
    assert sorted(new_net.sinks) == sorted(moved)
    nl.check()


def test_decompose_wide_gate(design):
    nl, pl, grid = design
    cid = _some_cell(nl, min_inputs=3)
    inst = nl.cells[cid]
    n_inputs = nl.cell_type(cid).n_inputs
    in_nets = sorted(nl.pins[ip].net for ip in inst.input_pins)
    out_sinks = sorted(nl.nets[nl.pins[inst.output_pin].net].sinks)
    n_cells = len(nl.cells)

    new_cells = decompose_gate(nl, pl, grid, cid)
    assert new_cells is not None
    assert len(new_cells) == n_inputs - 1
    assert cid not in nl.cells
    assert len(nl.cells) == n_cells + len(new_cells) - 1
    # All original input nets still feed the tree; sinks see the new root.
    tree_inputs = []
    for nc in new_cells:
        for ip in nl.cells[nc].input_pins:
            net = nl.pins[ip].net
            if net in in_nets:
                tree_inputs.append(net)
    assert sorted(tree_inputs) == in_nets
    root = nl.cells[new_cells[-1]]
    assert sorted(nl.nets[nl.pins[root.output_pin].net].sinks) == out_sinks
    nl.check()


def test_decompose_respects_input_order(design):
    nl, pl, grid = design
    cid = _some_cell(nl, min_inputs=3)
    inst = nl.cells[cid]
    order = list(reversed(inst.input_pins))
    latest_net = nl.pins[order[-1]].net
    new_cells = decompose_gate(nl, pl, grid, cid, input_order=order)
    # The latest-arriving input must feed the root gate directly.
    root = nl.cells[new_cells[-1]]
    root_in_nets = [nl.pins[ip].net for ip in root.input_pins]
    assert latest_net in root_in_nets


def test_decompose_rejects_two_input_gate(design):
    nl, pl, grid = design
    cid = _some_cell(nl, kinds={"AND2", "OR2", "NAND2", "NOR2", "XOR2"})
    assert decompose_gate(nl, pl, grid, cid) is None


def test_clone_driver_splits_fanout(design):
    nl, pl, grid = design
    net = max(nl.nets.values(), key=lambda n: len(n.sinks))
    if len(net.sinks) < 4:
        pytest.skip("no high-fanout net in this tiny design")
    drv_cell = nl.pins[net.driver].cell
    total = len(net.sinks)
    clone_cid = clone_driver(nl, pl, grid, drv_cell)
    assert clone_cid is not None
    clone = nl.cells[clone_cid]
    clone_net = nl.nets[nl.pins[clone.output_pin].net]
    assert len(net.sinks) + len(clone_net.sinks) == total
    assert len(clone_net.sinks) >= 1
    # Clone shares the original's input nets.
    orig = nl.cells[drv_cell]
    assert ([nl.pins[ip].net for ip in clone.input_pins]
            == [nl.pins[ip].net for ip in orig.input_pins])
    nl.check()


def test_clone_rejects_low_fanout(design):
    nl, pl, grid = design
    net = min((n for n in nl.nets.values()
               if nl.pins[n.driver].cell is not None
               and not nl.cell_type(nl.pins[n.driver].cell).is_sequential),
              key=lambda n: len(n.sinks))
    assert clone_driver(nl, pl, grid, nl.pins[net.driver].cell) is None
