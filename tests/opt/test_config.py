"""Tests for optimizer configuration semantics."""

from dataclasses import replace

from repro.opt import OptimizerConfig


def test_defaults_are_in_paper_regime():
    cfg = OptimizerConfig()
    assert cfg.max_passes >= 3
    assert 0.0 <= cfg.remap_fraction <= 1.0
    assert 0.0 <= cfg.rewrite_rate <= 1.0
    assert cfg.min_free_space > 0


def test_config_is_frozen():
    cfg = OptimizerConfig()
    try:
        cfg.max_passes = 99
        raised = False
    except Exception:
        raised = True
    assert raised


def test_replace_produces_variant():
    cfg = replace(OptimizerConfig(), rewrite_rate=0.0)
    assert cfg.rewrite_rate == 0.0
    assert cfg.max_passes == OptimizerConfig().max_passes
