"""Fault-injection battery for the serving fleet.

Proves the ISSUE's recovery contract:

* a worker killed with SIGKILL **mid-request** leaves every in-flight
  client with a definite answer — pure requests are transparently
  retried on the replacement worker, committed what-ifs get a clean,
  retryable 503 (never a hang, never a wrong answer);
* the dead worker's sessions re-materialize on the replacement with
  their committed revisions intact (journal replay);
* a drain (SIGTERM path) finishes in-flight requests before shutdown
  and sheds new ones with a structured 503.
"""

from __future__ import annotations

import os
import signal
import threading
import time

import pytest

from repro.flow import run_flow

from .conftest import FLOW_CONFIG, http_call


@pytest.fixture(scope="module")
def xgate_flow():
    return run_flow("xgate", FLOW_CONFIG)


@pytest.fixture
def gateway(fleet_gateway, xgate_flow):
    return fleet_gateway({"xgate": xgate_flow}, workers=1,
                         fault_injection=True)


def _home_pid(gateway, design="xgate"):
    _, _, health = http_call(gateway.address, "GET", "/health")
    wid = health["fleet"]["designs"][design]
    return wid, gateway.fleet.workers[wid].pid


class TestKillNineMidRequest:
    def test_pure_request_is_retried_or_rejected_cleanly(self, gateway):
        """SIGKILL with a predict in flight: 200 (retried) — never a hang
        or a connection error."""
        _, pid = _home_pid(gateway)
        outcome = {}

        def fire():
            outcome["result"] = http_call(
                gateway.address, "POST", "/predict",
                {"design": "xgate", "_inject": {"sleep_s": 1.5}},
                timeout=60.0)

        t = threading.Thread(target=fire)
        t.start()
        time.sleep(0.4)  # request is now sleeping inside the worker
        os.kill(pid, signal.SIGKILL)
        t.join(timeout=60.0)
        assert not t.is_alive(), "in-flight request hung after SIGKILL"
        status, _, body = outcome["result"]
        # Pure request: the fleet retries it on the replacement worker.
        assert status == 200
        assert body["design"] == "xgate"
        assert body["n_endpoints"] == len(body["predictions"])

    def test_committed_whatif_gets_clean_503(self, gateway):
        """A commit in flight on a dying worker is ambiguous — it must
        fail with a retryable 503, not be silently replayed."""
        _, pid = _home_pid(gateway)
        outcome = {}

        def fire():
            outcome["result"] = http_call(
                gateway.address, "POST", "/whatif",
                {"design": "xgate", "commit": True,
                 "_inject": {"sleep_s": 1.5},
                 "edits": [{"op": "move", "cell": 1, "x": 3.0,
                            "y": 3.0}]},
                timeout=60.0)

        t = threading.Thread(target=fire)
        t.start()
        time.sleep(0.4)
        os.kill(pid, signal.SIGKILL)
        t.join(timeout=60.0)
        assert not t.is_alive()
        status, _, body = outcome["result"]
        assert status == 503
        assert body["error"]["code"] == "worker_lost"
        # The journal never saw the ack, so the replacement is at rev 0.
        _, _, designs = http_call(gateway.address, "GET", "/designs")
        assert designs["designs"]["xgate"]["revision"] == 0

    def test_fleet_keeps_serving_after_kill(self, gateway):
        _, pid = _home_pid(gateway)
        os.kill(pid, signal.SIGKILL)
        status, _, body = http_call(gateway.address, "POST", "/predict",
                                    {"design": "xgate"}, timeout=60.0)
        assert status == 200 and body["n_endpoints"] > 0
        _, _, health = http_call(gateway.address, "GET", "/health")
        worker = health["fleet"]["per_worker"][0]
        assert worker["restarts"] == 1 and worker["alive"]


class TestRematerialization:
    def test_committed_revisions_survive_worker_death(self, gateway):
        """Journal replay restores the shard's committed state."""
        for i in range(2):
            status, _, body = http_call(
                gateway.address, "POST", "/whatif",
                {"design": "xgate", "commit": True,
                 "edits": [{"op": "move", "cell": 1,
                            "x": 2.0 + i, "y": 2.0 + i}]})
            assert status == 200 and body["revision"] == i + 1
        _, _, after_commit = http_call(gateway.address, "POST",
                                       "/predict", {"design": "xgate"})
        assert after_commit["revision"] == 2

        _, pid = _home_pid(gateway)
        os.kill(pid, signal.SIGKILL)

        status, _, body = http_call(gateway.address, "POST", "/predict",
                                    {"design": "xgate"}, timeout=60.0)
        assert status == 200
        assert body["revision"] == 2, "journal replay lost a commit"
        # The replayed state predicts exactly what the dead worker did:
        # same committed placement, same shared weights.
        assert body["predictions"] == after_commit["predictions"]

    def test_repeated_kills(self, gateway):
        """Recovery is not a one-shot: survive several crashes."""
        for round_no in range(1, 3):
            _, pid = _home_pid(gateway)
            os.kill(pid, signal.SIGKILL)
            status, _, _ = http_call(gateway.address, "POST", "/predict",
                                     {"design": "xgate"}, timeout=60.0)
            assert status == 200
            _, _, health = http_call(gateway.address, "GET", "/health")
            assert (health["fleet"]["per_worker"][0]["restarts"]
                    == round_no)


class TestDrain:
    def test_drain_finishes_inflight_and_sheds_new(self, fleet_gateway,
                                                   xgate_flow):
        gateway = fleet_gateway({"xgate": xgate_flow}, workers=1,
                                fault_injection=True)
        inflight = {}

        def slow():
            inflight["result"] = http_call(
                gateway.address, "POST", "/predict",
                {"design": "xgate", "_inject": {"sleep_s": 1.2}},
                timeout=60.0)

        t = threading.Thread(target=slow)
        t.start()
        time.sleep(0.3)  # the slow request is inside the worker now
        gateway.request_drain()
        time.sleep(0.1)

        # New work is shed while the drain holds the loop open.
        status, _, body = http_call(gateway.address, "GET", "/health")
        assert status == 200 and body["status"] == "draining"
        status, _, body = http_call(gateway.address, "POST", "/predict",
                                    {"design": "xgate"}, timeout=30.0)
        assert status == 503
        assert body["error"]["code"] == "draining"

        # The in-flight request still completes successfully.
        t.join(timeout=60.0)
        assert not t.is_alive(), "drain dropped an in-flight request"
        status, _, body = inflight["result"]
        assert status == 200 and body["n_endpoints"] > 0

        # And the loop exits once everything is flushed.
        gateway.stop(drain_timeout_s=15.0)
        assert gateway.fleet.all_drained

    def test_kill_during_drain_still_drains(self, fleet_gateway,
                                            xgate_flow):
        """A worker dying mid-drain must not wedge the drain: the
        replacement re-runs the pure in-flight request, then drains."""
        gateway = fleet_gateway({"xgate": xgate_flow}, workers=1,
                                fault_injection=True)
        inflight = {}

        def slow():
            inflight["result"] = http_call(
                gateway.address, "POST", "/predict",
                {"design": "xgate", "_inject": {"sleep_s": 1.5}},
                timeout=60.0)

        t = threading.Thread(target=slow)
        t.start()
        time.sleep(0.3)
        gateway.request_drain()
        time.sleep(0.1)
        _, pid = _home_pid(gateway)
        os.kill(pid, signal.SIGKILL)

        t.join(timeout=60.0)
        assert not t.is_alive(), "request hung after kill-during-drain"
        status, _, body = inflight["result"]
        assert status == 200 and body["n_endpoints"] > 0

        gateway.stop(drain_timeout_s=15.0)
        assert gateway.fleet.all_drained, "drain wedged after worker death"

    def test_workers_ignore_group_sigterm(self, fleet_gateway,
                                          xgate_flow):
        """SIGTERM aimed straight at a worker (as a process-group signal
        from systemd/timeout would be) is ignored; the parent alone
        coordinates shutdown over the pipe."""
        gateway = fleet_gateway({"xgate": xgate_flow}, workers=1)
        _, pid = _home_pid(gateway)
        os.kill(pid, signal.SIGTERM)
        time.sleep(0.5)
        status, _, body = http_call(gateway.address, "POST", "/predict",
                                    {"design": "xgate"}, timeout=30.0)
        assert status == 200
        _, _, health = http_call(gateway.address, "GET", "/health")
        worker = health["fleet"]["per_worker"][0]
        assert worker["restarts"] == 0 and worker["alive"]

    def test_worker_exits_after_drain_ack(self, fleet_gateway,
                                          xgate_flow):
        gateway = fleet_gateway({"xgate": xgate_flow}, workers=1)
        process = gateway.fleet.workers[0].process
        gateway.stop(drain_timeout_s=15.0)
        process.join(timeout=5.0)
        assert not process.is_alive()
        # Drained exit, not a crash.
        assert process.exitcode == 0
