"""Shared-memory artifact tests (repro.serve.shm).

The fleet's correctness story leans on two properties proven here: the
attached views are bit-identical to the published arrays (so a worker's
model is *the same model*), and they are read-only (so a buggy worker
cannot corrupt its siblings through the shared segment).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import TimingPredictor
from repro.serve.shm import SharedArtifact, attach_artifact


@pytest.fixture
def published(artifact_payload):
    art = SharedArtifact.publish(artifact_payload)
    yield art
    art.unlink()


class TestRoundTrip:
    def test_arrays_bit_identical(self, published, artifact_payload):
        shm, payload = attach_artifact(published.meta)
        try:
            assert len(payload["state"]) == len(artifact_payload["state"])
            for got, want in zip(payload["state"],
                                 artifact_payload["state"]):
                np.testing.assert_array_equal(got, want)
        finally:
            shm.close()

    def test_extra_payload_carried(self, published, artifact_payload):
        shm, payload = attach_artifact(published.meta)
        try:
            for key in ("format", "schema_version", "model_config",
                        "norm"):
                assert payload[key] == artifact_payload[key]
        finally:
            shm.close()

    def test_meta_is_small_and_picklable(self, published):
        import pickle

        blob = pickle.dumps(published.meta)
        # The whole point: metadata over the pipe, weights via shm.
        assert len(blob) < 16 * 1024
        meta = pickle.loads(blob)
        assert meta.shm_name == published.meta.shm_name

    def test_alignment(self, published):
        for spec in published.meta.arrays:
            assert spec.offset % 64 == 0


class TestReadOnly:
    def test_attached_views_reject_writes(self, published):
        shm, payload = attach_artifact(published.meta)
        try:
            for arr in payload["state"]:
                assert not arr.flags.writeable
            with pytest.raises(ValueError):
                payload["state"][0][...] = 0.0
        finally:
            shm.close()

    def test_shared_predictor_params_alias_segment(self, published):
        """share_state=True adopts the views — zero copies, read-only."""
        shm, payload = attach_artifact(published.meta)
        try:
            predictor = TimingPredictor.from_artifact(
                payload, source="<shm>", share_state=True)
            params = predictor.model.parameters()
            assert params  # sanity
            for p, arr in zip(params, payload["state"]):
                assert p.data is arr
                assert not p.data.flags.writeable
        finally:
            shm.close()

    def test_shared_predictor_forward_bit_identical(
            self, published, served_predictor, tiny_sample):
        shm, payload = attach_artifact(published.meta)
        try:
            shared = TimingPredictor.from_artifact(
                payload, source="<shm>", share_state=True)
            np.testing.assert_array_equal(
                shared.predict_array(tiny_sample),
                served_predictor.predict_array(tiny_sample))
        finally:
            shm.close()


class TestLifecycle:
    def test_unlink_idempotent(self, artifact_payload):
        art = SharedArtifact.publish(artifact_payload)
        art.unlink()
        art.unlink()  # second call must be a no-op, not a crash

    def test_attach_after_unlink_fails(self, artifact_payload):
        art = SharedArtifact.publish(artifact_payload)
        meta = art.meta
        art.unlink()
        with pytest.raises(FileNotFoundError):
            attach_artifact(meta)

    def test_publish_requires_state(self):
        with pytest.raises(ValueError):
            SharedArtifact.publish({"model_config": {}})
