"""Serve-suite fixtures.

Sessions *mutate* the flow artifacts they own, so unlike the rest of the
suite these fixtures hand out fresh flows — the session-scoped
``tiny_flow`` must never be wrapped in a session.
"""

from __future__ import annotations

import pytest

from repro.core import ModelConfig, TimingPredictor, TrainerConfig
from repro.flow import FlowConfig, run_flow

MAP_BINS = 32
FLOW_CONFIG = FlowConfig(scale=0.25, base_seed=0)


@pytest.fixture(scope="package")
def served_predictor(tiny_sample) -> TimingPredictor:
    """A small fitted predictor matching the tiny flows' resolution."""
    predictor = TimingPredictor(
        model_config=ModelConfig(map_bins=MAP_BINS),
        trainer_config=TrainerConfig(epochs=2))
    predictor.fit([tiny_sample])
    return predictor


@pytest.fixture
def fresh_flow():
    """A flow result a session may own (and mutate) exclusively."""
    return run_flow("xgate", FLOW_CONFIG)
