"""Serve-suite fixtures.

Sessions *mutate* the flow artifacts they own, so unlike the rest of the
suite these fixtures hand out fresh flows — the session-scoped
``tiny_flow`` must never be wrapped in a session.
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request

import pytest

from repro.core import ModelConfig, TimingPredictor, TrainerConfig
from repro.flow import FlowConfig, run_flow
from repro.serve import FleetConfig, TimingFleet, TimingGateway

MAP_BINS = 32
FLOW_CONFIG = FlowConfig(scale=0.25, base_seed=0)


@pytest.fixture(scope="package")
def served_predictor(tiny_sample) -> TimingPredictor:
    """A small fitted predictor matching the tiny flows' resolution."""
    predictor = TimingPredictor(
        model_config=ModelConfig(map_bins=MAP_BINS),
        trainer_config=TrainerConfig(epochs=2))
    predictor.fit([tiny_sample])
    return predictor


@pytest.fixture
def fresh_flow():
    """A flow result a session may own (and mutate) exclusively."""
    return run_flow("xgate", FLOW_CONFIG)


@pytest.fixture(scope="package")
def artifact_payload(served_predictor):
    """The served predictor as a raw artifact payload (fleet input)."""
    return served_predictor.to_artifact()


@pytest.fixture
def fleet_gateway(artifact_payload):
    """Factory: launch a fleet + gateway, torn down after the test.

    Workers receive *copies* of the flows over the pipe, so callers may
    pass shared flow fixtures without mutation concerns.
    """
    launched = []

    def launch(flows, *, workers=2, host="127.0.0.1", port=0,
               **config_overrides):
        defaults = dict(threads=2, microbatch=4, deadline_s=20.0,
                        queue_depth=8)
        defaults.update(config_overrides)
        config = FleetConfig(workers=workers, **defaults)
        fleet = TimingFleet(artifact_payload, flows, config).start()
        gateway = TimingGateway(fleet, host=host, port=port).start()
        launched.append(gateway)
        return gateway

    yield launch
    for gateway in launched:
        gateway.stop(drain_timeout_s=15.0)


def http_call(address, method, path, body=None, timeout=30.0):
    """One HTTP request; returns ``(status, headers, parsed_body)``."""
    host, port = address
    data = json.dumps(body).encode() if body is not None else None
    req = urllib.request.Request(
        f"http://{host}:{port}{path}", data=data, method=method,
        headers={"Content-Type": "application/json"})
    try:
        with urllib.request.urlopen(req, timeout=timeout) as resp:
            return resp.status, dict(resp.headers), json.loads(resp.read())
    except urllib.error.HTTPError as exc:
        return exc.code, dict(exc.headers), json.loads(exc.read())
