"""Session lifecycle: DELETE /designs/<id>, idle-TTL eviction, release.

The eviction path must behave identically over both transports (the
in-process ``--workers 0`` dispatcher and the multi-process fleet), and
closing a session must actually release what it pinned: plan-cache
entries, the cached baseline, and — for sessions that own their
predictor — the inference buffer arena.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.core import TimingPredictor
from repro.flow import run_flow
from repro.ml.plancache import PLAN_CACHE
from repro.serve import ServerConfig, TimingServer
from repro.serve.dispatch import ApiError, RequestDispatcher
from repro.serve.session import DesignSession

from tests.serve.conftest import FLOW_CONFIG, http_call


@pytest.fixture
def own_session(fresh_flow, artifact_payload):
    """A session that owns its predictor (the --workers 0 shape)."""
    predictor = TimingPredictor.from_artifact(artifact_payload)
    return DesignSession(fresh_flow, predictor, seed=0)


# ----------------------------------------------------------------------
# Dispatcher-level semantics
# ----------------------------------------------------------------------
def test_delete_removes_session_and_404s_after(own_session):
    sessions = {"xgate": own_session}
    dispatcher = RequestDispatcher(sessions, max_concurrent=2)
    out = dispatcher.handle("DELETE", "/designs/xgate", None)
    assert out == {"design": "xgate", "deleted": True, "revision": 0,
                   "whatifs_served": 0}
    assert sessions == {}  # the dict is aliased, not copied
    status, payload = dispatcher.handle_to_wire("DELETE",
                                                "/designs/xgate", None)
    assert status == 404
    assert payload["error"]["code"] == "unknown_design"


def test_delete_unknown_design_is_the_canonical_404(own_session):
    dispatcher = RequestDispatcher({"xgate": own_session})
    with pytest.raises(ApiError) as err:
        dispatcher.handle("DELETE", "/designs/nosuch", None)
    assert err.value.status == 404
    assert "nosuch" in err.value.message and "xgate" in err.value.message


def test_close_releases_plan_cache_and_arena(own_session):
    own_session.predict()
    # The micro-batched serving path packs resident samples into
    # multi-design batches, which is what populates the plan cache with
    # this session's topology (pack-of-one reuses arrays as-is).
    own_session.predictor.predict_batch_arrays([own_session.sample] * 2)
    assert own_session.predictor._workspace.describe()["buffers"] > 0
    pid = id(own_session.sample.plans)
    assert any(pid in key for key in PLAN_CACHE._entries)

    own_session.close()
    assert own_session.predictor._workspace.describe()["buffers"] == 0
    assert not any(pid in key for key in PLAN_CACHE._entries)
    assert own_session._baseline is None
    own_session.close()  # idempotent


def test_shared_predictor_session_keeps_the_arena(fresh_flow,
                                                  served_predictor):
    """A batcher-backed session must not drop the shared arena."""
    session = DesignSession(fresh_flow, served_predictor, seed=0,
                            infer=served_predictor.predict_array)
    session.predict()
    buffers = served_predictor._workspace.describe()["buffers"]
    assert buffers > 0
    session.close()
    assert served_predictor._workspace.describe()["buffers"] == buffers


def test_idle_ttl_sweep_evicts_and_notifies(own_session):
    sessions = {"xgate": own_session}
    evicted = []
    dispatcher = RequestDispatcher(sessions, session_ttl_s=0.15,
                                   on_evict=evicted.append)
    out = dispatcher.handle("GET", "/health", None)
    assert out["designs"] == ["xgate"]

    time.sleep(0.3)
    out = dispatcher.handle("GET", "/health", None)
    assert out["designs"] == []
    assert evicted == ["xgate"]
    assert own_session._closed


def test_idle_ttl_skips_busy_sessions(own_session):
    sessions = {"xgate": own_session}
    dispatcher = RequestDispatcher(sessions, session_ttl_s=0.05)
    time.sleep(0.15)

    holding = threading.Event()
    done = threading.Event()

    def hold_lock():
        with own_session._lock:
            holding.set()
            done.wait(timeout=5.0)

    t = threading.Thread(target=hold_lock)
    t.start()
    assert holding.wait(timeout=5.0)
    try:
        dispatcher.handle("GET", "/health", None)
        assert "xgate" in sessions, "busy session must not be evicted"
        assert not own_session._closed
    finally:
        done.set()
        t.join()
    # Idle again: the next request sweeps it out.
    dispatcher.handle("GET", "/health", None)
    assert "xgate" not in sessions


# ----------------------------------------------------------------------
# Transport differential: --workers 0 vs the fleet
# ----------------------------------------------------------------------
def _inproc_server(artifact_payload, flows):
    sessions = {
        name: DesignSession(flow,
                            TimingPredictor.from_artifact(artifact_payload),
                            seed=0)
        for name, flow in flows.items()}
    return TimingServer(sessions, ServerConfig(port=0, max_workers=2,
                                               deadline_s=20.0)).start()


def test_delete_route_differential(artifact_payload, fleet_gateway):
    """Identical (status, body) for the DELETE lifecycle over both
    transports: unknown design, successful delete, repeat delete, and
    the post-delete predict 404."""
    flows = {d: run_flow(d, FLOW_CONFIG) for d in ("xgate", "steelcore")}
    server = _inproc_server(artifact_payload,
                            {d: run_flow(d, FLOW_CONFIG) for d in flows})
    gateway = fleet_gateway(flows, workers=2)
    try:
        script = [
            ("DELETE", "/designs/nosuch", None),
            ("DELETE", "/designs/xgate", None),
            ("DELETE", "/designs/xgate", None),   # repeat → 404
            ("POST", "/predict", {"design": "xgate"}),
            ("DELETE", "/designs", None),         # no id → no_such_route
        ]
        for method, path, body in script:
            s_status, _, s_body = http_call(server.address, method, path,
                                            body)
            g_status, _, g_body = http_call(gateway.address, method, path,
                                            body)
            assert (g_status, g_body) == (s_status, s_body), (
                f"{method} {path} diverged: in-process "
                f"({s_status}, {s_body}) vs fleet ({g_status}, {g_body})")
        # The surviving design keeps serving over both transports.
        s_status, _, s_body = http_call(server.address, "POST", "/predict",
                                        {"design": "steelcore"})
        g_status, _, g_body = http_call(gateway.address, "POST",
                                        "/predict",
                                        {"design": "steelcore"})
        assert s_status == g_status == 200
        assert g_body["predictions"] == s_body["predictions"]
    finally:
        server.stop()


def test_fleet_forgets_evicted_design(fleet_gateway):
    flows = {d: run_flow(d, FLOW_CONFIG) for d in ("xgate", "steelcore")}
    gateway = fleet_gateway(flows, workers=2)
    status, _, body = http_call(gateway.address, "DELETE",
                                "/designs/xgate")
    assert status == 200 and body["deleted"] is True

    # Routing is gone fleet-wide: health and describe no longer list it.
    status, _, health = http_call(gateway.address, "GET", "/health")
    assert status == 200
    assert health["designs"] == ["steelcore"]
    assert "xgate" not in health["fleet"]["designs"]
    status, _, designs = http_call(gateway.address, "GET", "/designs")
    assert status == 200
    assert sorted(designs["designs"]) == ["steelcore"]
