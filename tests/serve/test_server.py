"""HTTP front-end tests: routes, structured errors, concurrency."""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.serve import DesignSession, ServerConfig, TimingServer


@pytest.fixture(scope="module")
def server(request, served_predictor):
    from repro.flow import run_flow

    from .conftest import FLOW_CONFIG

    flow = run_flow("xgate", FLOW_CONFIG)
    session = DesignSession(flow, served_predictor)
    srv = TimingServer({"xgate": session},
                       ServerConfig(port=0, max_workers=4),
                       model_info={"name": "test-model"})
    srv.start()
    request.addfinalizer(srv.stop)
    return srv


def call(server, method, path, body=None, timeout=30.0):
    host, port = server.address
    data = json.dumps(body).encode() if body is not None else None
    req = urllib.request.Request(
        f"http://{host}:{port}{path}", data=data, method=method,
        headers={"Content-Type": "application/json"})
    try:
        with urllib.request.urlopen(req, timeout=timeout) as resp:
            return resp.status, json.loads(resp.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


def make_move_edit(server):
    session = server.sessions["xgate"]
    cid = next(iter(session.netlist.cells))
    return {"op": "move", "cell": cid, "x": 1.0, "y": 1.0}


class TestRoutes:
    def test_health(self, server):
        status, body = call(server, "GET", "/health")
        assert status == 200
        assert body["status"] == "ok"
        assert body["designs"] == ["xgate"]
        assert body["model"] == {"name": "test-model"}
        assert body["api_version"] == "v1"

    def test_designs(self, server):
        status, body = call(server, "GET", "/designs")
        assert status == 200
        info = body["designs"]["xgate"]
        assert info["endpoints"] > 0 and info["cells"] > 0

    def test_predict(self, server):
        status, body = call(server, "POST", "/predict",
                            {"design": "xgate"})
        assert status == 200
        assert body["n_endpoints"] == len(body["predictions"])
        assert all(isinstance(v, float)
                   for v in body["predictions"].values())

    def test_predict_defaults_to_single_design(self, server):
        status, body = call(server, "POST", "/predict", {})
        assert status == 200 and body["design"] == "xgate"

    def test_predict_subset(self, server):
        _, full = call(server, "POST", "/predict", {"design": "xgate"})
        some = [int(p) for p in list(full["predictions"])[:2]]
        status, body = call(server, "POST", "/predict",
                            {"design": "xgate", "endpoints": some})
        assert status == 200 and body["n_endpoints"] == 2

    def test_whatif_uncommitted_is_pure(self, server):
        _, before = call(server, "POST", "/predict", {"design": "xgate"})
        status, body = call(server, "POST", "/whatif",
                            {"design": "xgate",
                             "edits": [make_move_edit(server)]})
        assert status == 200
        assert body["committed"] is False
        assert body["shift"]["endpoints_changed"] > 0
        assert body["latency_ms"] > 0
        _, after = call(server, "POST", "/predict", {"design": "xgate"})
        assert after["predictions"] == before["predictions"]

    def test_metrics_report_latency(self, server):
        call(server, "POST", "/predict", {"design": "xgate"})
        status, body = call(server, "GET", "/metrics")
        assert status == 200
        summary = body["metrics"]["serve.latency_ms"]
        assert summary["count"] >= 1
        assert summary["p95"] >= summary["p50"] >= 0


class TestErrors:
    def test_unknown_design_404(self, server):
        status, body = call(server, "POST", "/predict",
                            {"design": "missing"})
        assert status == 404
        assert body["error"]["code"] == "unknown_design"
        assert "missing" in body["error"]["message"]

    def test_unknown_route_404(self, server):
        status, body = call(server, "GET", "/nope")
        assert status == 404 and body["error"]["code"] == "no_such_route"

    def test_empty_edits_400(self, server):
        status, body = call(server, "POST", "/whatif",
                            {"design": "xgate", "edits": []})
        assert status == 400 and body["error"]["code"] == "bad_request"

    def test_invalid_edit_400(self, server):
        status, body = call(server, "POST", "/whatif",
                            {"design": "xgate",
                             "edits": [{"op": "explode", "cell": 0}]})
        assert status == 400 and body["error"]["code"] == "bad_request"

    def test_malformed_json_400(self, server):
        host, port = server.address
        req = urllib.request.Request(
            f"http://{host}:{port}/predict", data=b"{not json",
            method="POST")
        with pytest.raises(urllib.error.HTTPError) as exc_info:
            urllib.request.urlopen(req, timeout=30.0)
        assert exc_info.value.code == 400
        assert json.loads(exc_info.value.read()
                          )["error"]["code"] == "bad_json"

    def test_exceeded_deadline_504(self, server):
        status, body = call(server, "POST", "/predict",
                            {"design": "xgate", "deadline_s": 1e-9})
        assert status in (503, 504)
        assert body["error"]["code"] in ("overloaded",
                                         "deadline_exceeded")


class TestConcurrency:
    N_THREADS = 8
    PER_THREAD = 3

    def test_concurrent_predict_smoke(self, server):
        """N threads hammering /predict: every response valid and equal."""
        results, errors = [], []

        def worker():
            try:
                for _ in range(self.PER_THREAD):
                    status, body = call(server, "POST", "/predict",
                                        {"design": "xgate"})
                    assert status == 200
                    results.append(body["predictions"])
            except Exception as exc:  # noqa: BLE001 — collected for report
                errors.append(exc)

        threads = [threading.Thread(target=worker)
                   for _ in range(self.N_THREADS)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=120.0)
        assert not errors, errors
        assert len(results) == self.N_THREADS * self.PER_THREAD
        # The design never changed, so every response is identical.
        assert all(r == results[0] for r in results)

    def test_concurrent_mixed_traffic(self, server):
        """Interleaved whatif + predict stays consistent (one lock/session)."""
        edit = make_move_edit(server)
        errors = []

        def predictor():
            try:
                for _ in range(self.PER_THREAD):
                    status, _ = call(server, "POST", "/predict",
                                     {"design": "xgate"})
                    assert status == 200
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)

        def whatiffer():
            try:
                for _ in range(self.PER_THREAD):
                    status, body = call(server, "POST", "/whatif",
                                        {"design": "xgate",
                                         "edits": [edit]})
                    assert status == 200 and body["committed"] is False
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)

        threads = ([threading.Thread(target=predictor) for _ in range(3)]
                   + [threading.Thread(target=whatiffer)
                      for _ in range(3)])
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=240.0)
        assert not errors, errors
        # Uncommitted traffic never advances the design revision.
        _, body = call(server, "GET", "/designs")
        assert body["designs"]["xgate"]["revision"] == 0
