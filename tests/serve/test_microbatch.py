"""Tests for the serving micro-batcher (repro.serve.batcher)."""

import threading

import numpy as np
import pytest

from repro.serve import MicroBatcher


@pytest.fixture
def batcher(served_predictor):
    b = MicroBatcher(served_predictor, max_batch=8, max_wait_s=0.25)
    yield b
    b.stop()


def test_single_submit_matches_predict_array(batcher, served_predictor,
                                             tiny_sample):
    got = batcher.submit(tiny_sample)
    want = served_predictor.predict_array(tiny_sample)
    np.testing.assert_allclose(got, want, rtol=1e-9, atol=0.0)
    stats = batcher.describe()
    assert stats["batches_run"] == 1
    assert stats["requests_served"] == 1


def test_concurrent_submits_coalesce_into_one_batch(batcher,
                                                    served_predictor,
                                                    tiny_sample):
    """Three blocked callers → one packed pass, identical results."""
    results = [None] * 3
    errors = [None] * 3

    def call(i):
        try:
            results[i] = batcher.submit(tiny_sample)
        except BaseException as exc:  # pragma: no cover - surfaced below
            errors[i] = exc

    threads = [threading.Thread(target=call, args=(i,)) for i in range(3)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=10.0)
    assert errors == [None] * 3

    want = served_predictor.predict_array(tiny_sample)
    for got in results:
        np.testing.assert_allclose(got, want, rtol=1e-9, atol=0.0)

    stats = batcher.describe()
    assert stats["requests_served"] == 3
    # The generous max_wait window must have coalesced the burst.
    assert stats["batches_run"] == 1


def test_error_fans_out_and_worker_survives(batcher, tiny_sample):
    with pytest.raises(AttributeError):
        batcher.submit(object())  # not a DesignSample: packing fails
    # The worker thread must still be alive and serving.
    out = batcher.submit(tiny_sample)
    assert np.isfinite(out).all()


def test_describe_reports_config(served_predictor):
    b = MicroBatcher(served_predictor, max_batch=5, max_wait_s=0.004)
    try:
        stats = b.describe()
        assert stats["max_batch"] == 5
        assert stats["max_wait_ms"] == pytest.approx(4.0)
        assert stats["batches_run"] == 0
        assert stats["requests_served"] == 0
    finally:
        b.stop()


def test_stop_finishes_in_flight_work(served_predictor, tiny_sample):
    b = MicroBatcher(served_predictor, max_batch=4, max_wait_s=0.05)
    results = []
    t = threading.Thread(
        target=lambda: results.append(b.submit(tiny_sample)))
    t.start()
    t.join(timeout=10.0)
    b.stop()
    assert len(results) == 1 and np.isfinite(results[0]).all()
    assert not b._thread.is_alive()


def test_validation():
    with pytest.raises(ValueError):
        MicroBatcher(None, max_batch=0)
    with pytest.raises(ValueError):
        MicroBatcher(None, max_wait_s=-1.0)
