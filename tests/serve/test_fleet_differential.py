"""Differential test: the fleet is bit-identical to the in-process path.

The same request stream is driven through

* the in-process server path (``repro serve --workers 0``): sessions +
  micro-batcher + ``RequestDispatcher``, and
* the sharded fleet (``--workers 4``): gateway → worker processes
  mapping the shared-memory artifact,

and every response is compared **exactly** — float-for-float on
predictions, byte-for-byte on error bodies.  Only volatile wall-clock
fields (``latency_ms``, ``uptime_s``) and transport-level metadata are
normalized away.

This works because both paths share the layers that matter: the same
``RequestDispatcher`` routes, the same ``DesignSession`` re-featurizes,
the same ``MicroBatcher``/``PackedBatch`` computes, and the worker's
weights are read-only views of the same float64 arrays the in-process
predictor loads.
"""

from __future__ import annotations

import copy
import pickle

import pytest

from repro.core import TimingPredictor
from repro.flow import run_flow
from repro.serve import DesignSession, MicroBatcher, RequestDispatcher

from .conftest import FLOW_CONFIG, http_call

DESIGNS = ("xgate", "chacha")

#: The request stream: every route, happy paths and error paths, with
#: state mutation (committed what-ifs) interleaved so later responses
#: depend on earlier ones being applied identically on both sides.
STREAM = [
    ("POST", "/predict", {"design": "xgate"}),
    ("POST", "/predict", {"design": "chacha"}),
    ("POST", "/whatif", {"design": "xgate",
                         "edits": [{"op": "move", "cell": 1,
                                    "x": 4.0, "y": 4.0}]}),
    ("POST", "/predict", {"design": "xgate"}),      # whatif was pure
    ("POST", "/whatif", {"design": "xgate", "commit": True,
                         "edits": [{"op": "move", "cell": 1,
                                    "x": 5.0, "y": 5.0}]}),
    ("POST", "/predict", {"design": "xgate"}),      # committed state
    ("POST", "/whatif", {"design": "chacha", "commit": True,
                         "edits": [{"op": "move", "cell": 2,
                                    "x": 1.0, "y": 6.0},
                                   {"op": "move", "cell": 3,
                                    "x": 2.0, "y": 2.0}]}),
    ("POST", "/predict", {"design": "chacha"}),
    ("POST", "/whatif", {"design": "xgate", "commit": True,
                         "edits": [{"op": "move", "cell": 1,
                                    "x": 6.0, "y": 6.0}]}),
    ("POST", "/predict", {"design": "xgate"}),
    ("GET", "/designs", None),
    # Error paths must be byte-identical too.
    ("POST", "/predict", {"design": "nope"}),
    ("POST", "/predict", {"design": "xgate", "endpoints": "x"}),
    ("POST", "/whatif", {"design": "xgate", "edits": []}),
    ("POST", "/whatif", {"design": "xgate",
                         "edits": [{"op": "explode", "cell": 1}]}),
    ("POST", "/whatif", {"design": "xgate",
                         "edits": [{"op": "move", "cell": 999999,
                                    "x": 1.0, "y": 1.0}]}),
    ("GET", "/bogus", None),
]

_VOLATILE_KEYS = ("latency_ms", "uptime_s", "whatifs_served")


def _normalize(payload):
    """Strip wall-clock fields; everything else must match exactly."""
    if isinstance(payload, dict):
        return {k: _normalize(v) for k, v in payload.items()
                if k not in _VOLATILE_KEYS}
    if isinstance(payload, list):
        return [_normalize(v) for v in payload]
    return payload


@pytest.fixture(scope="module")
def flows():
    return {d: run_flow(d, FLOW_CONFIG) for d in DESIGNS}


@pytest.fixture(scope="module")
def inprocess_responses(flows, artifact_payload):
    """The stream through sessions + batcher + dispatcher (workers 0)."""
    own_flows = {d: pickle.loads(pickle.dumps(f))
                 for d, f in flows.items()}
    predictor = TimingPredictor.from_artifact(
        copy.deepcopy(artifact_payload))
    batcher = MicroBatcher(predictor, max_batch=4, max_wait_s=2e-3)
    sessions = {d: DesignSession(f, predictor, seed=0,
                                 infer=batcher.submit)
                for d, f in own_flows.items()}
    dispatcher = RequestDispatcher(sessions, max_concurrent=2,
                                   deadline_s=20.0)
    try:
        return [dispatcher.handle_to_wire(method, path, body)
                for method, path, body in STREAM]
    finally:
        batcher.stop()


@pytest.fixture(scope="module")
def fleet_responses(flows, artifact_payload):
    """The same stream through the 4-worker fleet over real HTTP."""
    from repro.serve import FleetConfig, TimingFleet, TimingGateway

    fleet = TimingFleet(artifact_payload, flows,
                        FleetConfig(workers=4, threads=2, microbatch=4,
                                    deadline_s=20.0)).start()
    gateway = TimingGateway(fleet, port=0).start()
    try:
        out = []
        for method, path, body in STREAM:
            status, _, payload = http_call(gateway.address, method, path,
                                           body, timeout=60.0)
            out.append((status, payload))
        return out
    finally:
        gateway.stop(drain_timeout_s=15.0)


def test_stream_lengths(inprocess_responses, fleet_responses):
    assert len(inprocess_responses) == len(fleet_responses) == len(STREAM)


@pytest.mark.parametrize("idx", range(len(STREAM)),
                         ids=[f"{i:02d}-{m}{p}".replace("/", "_")
                              for i, (m, p, _) in enumerate(STREAM)])
def test_response_bit_identical(idx, inprocess_responses,
                                fleet_responses):
    method, path, body = STREAM[idx]
    in_status, in_payload = inprocess_responses[idx]
    fl_status, fl_payload = fleet_responses[idx]
    assert fl_status == in_status, (
        f"status diverged on {method} {path} ({body})")
    assert _normalize(fl_payload) == _normalize(in_payload), (
        f"payload diverged on {method} {path} ({body})")


def test_predictions_are_exact_floats(inprocess_responses,
                                      fleet_responses):
    """Spot-check the comparison has teeth: real float payloads, not
    empty dicts, and committed-state predictions present on both sides."""
    in_status, in_payload = inprocess_responses[9]   # predict after 2nd commit
    assert in_status == 200 and in_payload["revision"] == 2
    preds = in_payload["predictions"]
    assert len(preds) > 10
    assert all(isinstance(v, float) for v in preds.values())
    fl_preds = fleet_responses[9][1]["predictions"]
    assert fl_preds == preds  # exact, not approx
