"""Deadline accounting regression tests.

The bug being pinned down: a request's deadline used to stop counting
once it entered the micro-batcher — ``MicroBatcher.submit`` waited on
its completion event with **no timeout**, so a request could sit in the
batch-formation window (or behind a slow batch) for arbitrarily long
after its HTTP deadline had passed and still be served instead of
returning 504.  Now the remaining budget is threaded through the session
into ``submit(sample, timeout=...)`` and the wait itself can expire.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.serve import DesignSession, MicroBatcher, RequestDispatcher
from repro.serve.batcher import _Pending


class _SlowPredictor:
    """Duck-typed predictor whose packed forward takes ``delay_s``."""

    def __init__(self, base, delay_s):
        self._base = base
        self.delay_s = delay_s

    def predict_batch_arrays(self, samples):
        time.sleep(self.delay_s)
        return self._base.predict_batch_arrays(samples)


class TestBatcherTimeout:
    def test_wait_expires_inside_formation_window(self, served_predictor,
                                                  tiny_sample):
        """A deadline shorter than max_wait_s must fire, not hang."""
        batcher = MicroBatcher(_SlowPredictor(served_predictor, 0.0),
                               max_batch=8, max_wait_s=5.0)
        try:
            t0 = time.perf_counter()
            with pytest.raises(TimeoutError, match="deadline"):
                batcher.submit(tiny_sample, timeout=0.1)
            # The regression would block the full 5s formation window.
            assert time.perf_counter() - t0 < 2.0
        finally:
            batcher.stop()

    def test_wait_expires_behind_slow_batch(self, served_predictor,
                                            tiny_sample):
        batcher = MicroBatcher(_SlowPredictor(served_predictor, 0.6),
                               max_batch=1, max_wait_s=0.0)
        try:
            with pytest.raises(TimeoutError):
                batcher.submit(tiny_sample, timeout=0.05)
        finally:
            batcher.stop()

    def test_expired_slot_is_abandoned_not_delivered(self,
                                                     served_predictor,
                                                     tiny_sample):
        batcher = MicroBatcher(_SlowPredictor(served_predictor, 0.3),
                               max_batch=1, max_wait_s=0.0)
        try:
            with pytest.raises(TimeoutError):
                batcher.submit(tiny_sample, timeout=0.05)
            # The worker still finishes its batch and the batcher keeps
            # serving fresh requests afterwards.
            got = batcher.submit(tiny_sample, timeout=10.0)
            want = served_predictor.predict_array(tiny_sample)
            np.testing.assert_allclose(got, want, rtol=1e-9, atol=0.0)
        finally:
            batcher.stop()

    def test_no_timeout_still_blocks_to_completion(self, served_predictor,
                                                   tiny_sample):
        batcher = MicroBatcher(served_predictor, max_batch=4,
                               max_wait_s=0.01)
        try:
            got = batcher.submit(tiny_sample)  # timeout=None: wait it out
            assert got.shape == (tiny_sample.n_endpoints,)
        finally:
            batcher.stop()

    def test_abandoned_flag_set(self):
        pending = _Pending(samples=[None], multi=False)
        assert pending.abandoned is False


class TestSessionDeadline:
    def test_predict_deadline_counts_infer_wait(self, fresh_flow,
                                                served_predictor):
        """The session passes its remaining budget into the infer call."""
        seen = {}

        def slow_infer(sample, timeout=None):
            seen["timeout"] = timeout
            if timeout is not None and timeout < 0.5:
                raise TimeoutError("simulated batcher expiry")
            return served_predictor.predict_array(sample)

        session = DesignSession(fresh_flow, served_predictor,
                                infer=slow_infer)
        with pytest.raises(TimeoutError):
            session.predict(deadline_s=0.05)
        assert seen["timeout"] is not None and seen["timeout"] <= 0.05

    def test_whatif_timeout_restores_state(self, fresh_flow,
                                           served_predictor):
        """A what-if that expires mid-flight must stay pure."""
        calls = {"n": 0}

        def flaky_infer(sample, timeout=None):
            calls["n"] += 1
            if timeout is not None and timeout <= 0.0:
                raise TimeoutError("expired")
            return served_predictor.predict_array(sample)

        session = DesignSession(fresh_flow, served_predictor,
                                infer=flaky_infer)
        cid = next(iter(session.netlist.cells))
        x0, y0 = session.placement.position(cid)
        before = session.predict()
        with pytest.raises(TimeoutError):
            # Deadline that survives the baseline pass but has expired by
            # the post-edit inference (deadline_s=0 expires immediately;
            # baseline is cached from predict() above so it's not
            # re-inferred).
            session.whatif([{"op": "move", "cell": cid,
                             "x": x0 + 3.0, "y": y0 + 3.0}],
                           deadline_s=0.0)
        assert session.placement.position(cid) == (x0, y0)
        assert session.revision == 0
        assert session.predict() == before

    def test_lock_wait_counts_against_deadline(self, fresh_flow,
                                               served_predictor):
        import threading

        session = DesignSession(fresh_flow, served_predictor)
        release = threading.Event()

        def hold_lock():
            with session._lock:
                release.wait(5.0)

        holder = threading.Thread(target=hold_lock, daemon=True)
        holder.start()
        time.sleep(0.05)  # let the holder grab the lock
        try:
            t0 = time.perf_counter()
            with pytest.raises(TimeoutError, match="busy"):
                session.predict(deadline_s=0.1)
            assert time.perf_counter() - t0 < 2.0
        finally:
            release.set()
            holder.join(timeout=5.0)


class TestDispatcherDeadline:
    def test_predict_504_includes_batcher_wait(self, fresh_flow,
                                               served_predictor):
        """End to end: deadline expiring inside infer → structured 504."""
        def stuck_infer(sample, timeout=None):
            if timeout is not None:
                time.sleep(min(timeout, 0.2))
                raise TimeoutError(
                    "inference did not complete within the deadline "
                    "(micro-batch wait included)")
            return served_predictor.predict_array(sample)

        session = DesignSession(fresh_flow, served_predictor,
                                infer=stuck_infer)
        dispatcher = RequestDispatcher({"xgate": session})
        status, payload = dispatcher.handle_to_wire(
            "POST", "/predict", {"design": "xgate", "deadline_s": 0.1})
        assert status == 504
        assert payload["error"]["code"] == "deadline_exceeded"
        assert "micro-batch" in payload["error"]["message"]
