"""Gateway concurrency/property tests: affinity, backpressure, isolation.

These pin the fleet's structural invariants:

* **Session affinity** — every request for a design is answered by the
  same worker process (the ``X-Repro-Worker`` header), matching the
  routing table the gateway reports in ``/health``.
* **Backpressure** — overflowing a shard's bounded queue sheds load
  with a structured 503 + ``Retry-After`` instead of deadlocking the
  event loop.
* **Worker isolation** — every worker proves (via its describe fan-out)
  that its model parameters are read-only views into the shared
  segment, so no worker can corrupt the fleet's weights.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.flow import run_flow
from repro.serve import FleetConfig, TimingFleet

from .conftest import FLOW_CONFIG, http_call


@pytest.fixture(scope="module")
def two_flows():
    return {"xgate": run_flow("xgate", FLOW_CONFIG),
            "chacha": run_flow("chacha", FLOW_CONFIG)}


@pytest.fixture
def gateway(fleet_gateway, two_flows):
    return fleet_gateway(two_flows, workers=2)


class TestAffinity:
    def test_same_design_same_worker(self, gateway):
        workers_seen = {"xgate": set(), "chacha": set()}
        for _ in range(3):
            for design in workers_seen:
                status, headers, _ = http_call(
                    gateway.address, "POST", "/predict",
                    {"design": design})
                assert status == 200
                workers_seen[design].add(headers["X-Repro-Worker"])
        # Affinity invariant: one home worker per design, ever.
        assert all(len(seen) == 1 for seen in workers_seen.values())
        # Two workers, two designs → disjoint shards.
        assert workers_seen["xgate"] != workers_seen["chacha"]

    def test_header_matches_health_routing(self, gateway):
        _, _, health = http_call(gateway.address, "GET", "/health")
        routing = health["fleet"]["designs"]
        for design, wid in routing.items():
            status, headers, _ = http_call(
                gateway.address, "POST", "/predict", {"design": design})
            assert status == 200
            assert headers["X-Repro-Worker"] == str(wid)

    def test_committed_state_stays_on_shard(self, gateway):
        """Commits land on the design's home worker and persist there."""
        _, _, designs = http_call(gateway.address, "GET", "/designs")
        assert designs["designs"]["xgate"]["revision"] == 0
        status, headers, body = http_call(
            gateway.address, "POST", "/whatif",
            {"design": "xgate", "commit": True,
             "edits": [{"op": "move", "cell": 1, "x": 2.0, "y": 2.0}]})
        assert status == 200 and body["revision"] == 1
        _, _, designs = http_call(gateway.address, "GET", "/designs")
        assert designs["designs"]["xgate"]["revision"] == 1
        assert designs["designs"]["chacha"]["revision"] == 0


class TestRouting:
    def test_unknown_design_404_lists_full_fleet(self, gateway):
        status, _, body = http_call(gateway.address, "POST", "/predict",
                                    {"design": "nope"})
        assert status == 404
        assert body["error"]["code"] == "unknown_design"
        # The gateway answers with the fleet-wide design list, exactly
        # like the in-process dispatcher with all sessions local.
        assert "['chacha', 'xgate']" in body["error"]["message"]

    def test_unknown_route_404(self, gateway):
        status, _, body = http_call(gateway.address, "GET", "/nope")
        assert status == 404
        assert body["error"]["code"] == "no_such_route"

    def test_ambiguous_design_omission_404s(self, gateway):
        # Two designs served: omitting "design" is ambiguous.
        status, _, body = http_call(gateway.address, "POST", "/predict",
                                    {})
        assert status == 404
        assert body["error"]["code"] == "unknown_design"

    def test_bad_json_400(self, gateway):
        import http.client

        host, port = gateway.address
        conn = http.client.HTTPConnection(host, port, timeout=10)
        try:
            conn.request("POST", "/predict", body=b"{not json",
                         headers={"Content-Type": "application/json",
                                  "Content-Length": "9"})
            resp = conn.getresponse()
            assert resp.status == 400
        finally:
            conn.close()

    def test_metrics_folds_worker_counters(self, gateway):
        for _ in range(2):
            http_call(gateway.address, "POST", "/predict",
                      {"design": "xgate"})
        status, _, body = http_call(gateway.address, "GET", "/metrics")
        assert status == 200
        metrics = body["metrics"]
        # Worker-side counters crossed the process boundary in-band.
        assert metrics.get("serve.worker.requests", 0) >= 2
        assert metrics.get("model.inferences", 0) >= 1
        # Gateway-side latency histogram reports exact percentiles.
        assert metrics["serve.latency_ms"]["count"] >= 2


class TestBackpressure:
    def test_overload_sheds_503_without_deadlock(self, fleet_gateway,
                                                 two_flows):
        gateway = fleet_gateway({"xgate": two_flows["xgate"]}, workers=1,
                                threads=1, queue_depth=1,
                                fault_injection=True)
        results = []
        lock = threading.Lock()

        def fire():
            status, headers, body = http_call(
                gateway.address, "POST", "/predict",
                {"design": "xgate", "_inject": {"sleep_s": 0.4}},
                timeout=30.0)
            with lock:
                results.append((status, headers, body))

        threads = [threading.Thread(target=fire) for _ in range(6)]
        t0 = time.perf_counter()
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30.0)
        elapsed = time.perf_counter() - t0
        assert len(results) == 6, "a request deadlocked"
        statuses = sorted(s for s, _, _ in results)
        assert set(statuses) <= {200, 503}
        assert statuses.count(200) >= 1
        assert statuses.count(503) >= 1, (
            "bounded queue of 1 never shed load under a 6-way burst")
        for status, headers, body in results:
            if status == 503:
                assert body["error"]["code"] == "overloaded"
                assert headers.get("Retry-After") == "1"
        # Shed immediately, not after queueing behind the sleeps.
        assert elapsed < 15.0

    def test_loop_keeps_serving_other_designs_during_burst(
            self, fleet_gateway, two_flows):
        """A saturated shard must not block the other shard's requests."""
        gateway = fleet_gateway(two_flows, workers=2, threads=1,
                                queue_depth=2, fault_injection=True)
        slow_done = threading.Event()

        def slow():
            http_call(gateway.address, "POST", "/predict",
                      {"design": "xgate", "_inject": {"sleep_s": 1.0}},
                      timeout=30.0)
            slow_done.set()

        threading.Thread(target=slow, daemon=True).start()
        time.sleep(0.15)  # the slow request is now holding its shard
        t0 = time.perf_counter()
        status, _, _ = http_call(gateway.address, "POST", "/predict",
                                 {"design": "chacha"})
        fast_elapsed = time.perf_counter() - t0
        assert status == 200
        assert fast_elapsed < 0.9, (
            "other shard's request waited behind the saturated one")
        assert slow_done.wait(10.0)


class TestWorkerIsolation:
    def test_every_worker_reports_read_only_shared_weights(
            self, artifact_payload):
        flows = {"xgate": run_flow("xgate", FLOW_CONFIG)}
        fleet = TimingFleet(artifact_payload, flows,
                            FleetConfig(workers=2, threads=1)).start()
        try:
            # workers > designs: the fleet spawns only as many workers
            # as there are shards to serve.
            assert len(fleet.workers) == 1
            replies = []
            fleet.fanout("describe", replies.extend)
            deadline = time.perf_counter() + 15.0
            while not replies and time.perf_counter() < deadline:
                for worker in fleet.workers:
                    fleet.pump(worker)
                time.sleep(0.01)
            assert replies, "describe fan-out never completed"
            for info in replies:
                assert info["shm_read_only"] is True
                assert info["designs"] == ["xgate"]
        finally:
            fleet.stop()
