"""PredictorRegistry: validated artifacts, isolated instances."""

from __future__ import annotations

import pickle

import pytest

from repro.core import ARTIFACT_SCHEMA_VERSION, TimingPredictor
from repro.serve import PredictorRegistry


@pytest.fixture
def artifact_path(tmp_path, served_predictor):
    path = tmp_path / "model.pkl"
    served_predictor.save(path)
    return path


class TestRegister:
    def test_register_reports_metadata(self, artifact_path):
        registry = PredictorRegistry()
        meta = registry.register("m", artifact_path)
        assert meta["schema_version"] == ARTIFACT_SCHEMA_VERSION
        assert meta["variant"] == "full"
        assert meta["map_bins"] == 32
        assert meta["n_parameters"] > 0
        assert registry.names() == ["m"]
        assert registry.describe("m") == meta
        assert registry.describe() == {"m": meta}

    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="not found"):
            PredictorRegistry().register("m", tmp_path / "nope.pkl")

    def test_invalid_artifact_rejected_at_registration(self, tmp_path):
        path = tmp_path / "bad.pkl"
        with open(path, "wb") as fh:
            pickle.dump({"schema_version": 999}, fh)
        with pytest.raises(ValueError):
            PredictorRegistry().register("m", path)

    def test_register_in_memory_predictor(self, served_predictor):
        registry = PredictorRegistry()
        meta = registry.register_predictor("boot", served_predictor)
        assert meta["path"] == "<memory>"
        assert registry.acquire("boot") is not None


class TestAcquire:
    def test_acquire_returns_fresh_instances(self, artifact_path):
        registry = PredictorRegistry()
        registry.register("m", artifact_path)
        a = registry.acquire("m")
        b = registry.acquire("m")
        assert a is not b
        assert a.model is not b.model
        assert isinstance(a, TimingPredictor)

    def test_acquired_instances_predict_identically(
            self, artifact_path, tiny_sample):
        registry = PredictorRegistry()
        registry.register("m", artifact_path)
        a = registry.acquire("m").predict(tiny_sample)
        b = registry.acquire("m").predict(tiny_sample)
        assert a == b

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="no registered predictor"):
            PredictorRegistry().acquire("ghost")
