"""Multi-corner serving API: negotiation, typed schemas, MMMC what-ifs.

Covers the v1/v2 negotiation rules from :mod:`repro.serve.api`, the
corner-aware dispatcher responses, ``SessionFactory`` wiring, and the
acceptance contract: one ``/whatif`` answers every served corner in a
single packed forward, bit-identical between the in-process dispatcher
and a worker fleet.
"""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.core import ModelConfig, TimingPredictor, TrainerConfig
from repro.flow import FlowConfig, run_flow
from repro.ml.dataset import build_corner_samples
from repro.serve import (
    FleetConfig,
    MicroBatcher,
    PredictorRegistry,
    RequestDispatcher,
    SessionFactory,
    TimingFleet,
    TimingGateway,
    api,
)
from repro.serve.api import ApiError

from tests.serve.conftest import MAP_BINS, http_call

CORNERS = ("fast", "typ", "slow")
CORNER_FLOW_CONFIG = FlowConfig(scale=0.25, base_seed=0, corners=CORNERS)
EDIT = {"op": "move", "cell": 1, "x": 2.0, "y": 2.0}


# ---------------------------------------------------------------------------
# api module: negotiation rules


def test_negotiate_version_defaults_to_current():
    assert api.negotiate_version(None) == api.CURRENT_API_VERSION
    assert api.negotiate_version({}) == api.CURRENT_API_VERSION
    assert api.negotiate_version(
        {"api_version": "v2"}) == api.CURRENT_API_VERSION


def test_negotiate_version_rejects_unknown():
    with pytest.raises(ApiError) as exc:
        api.negotiate_version({"api_version": "v9"})
    assert exc.value.status == 400
    assert exc.value.code == "unsupported_api_version"


def test_legacy_pin_warns_once(monkeypatch):
    monkeypatch.setattr(api, "_warned_legacy", False)
    with pytest.warns(DeprecationWarning):
        assert api.negotiate_version({"api_version": "v1"}) == "v1"
    import warnings

    with warnings.catch_warnings():
        warnings.simplefilter("error")  # a second warning would raise
        assert api.negotiate_version({"api_version": "v1"}) == "v1"


@pytest.mark.filterwarnings("ignore::DeprecationWarning")
def test_corner_field_rejected_under_v1():
    with pytest.raises(ApiError) as exc:
        api.PredictRequest.parse({"api_version": "v1", "corner": "fast"})
    assert exc.value.status == 400
    assert "v1 is corner-unaware" in exc.value.message


def test_corner_field_must_be_string():
    with pytest.raises(ApiError):
        api.WhatifRequest.parse({"edits": [EDIT], "corner": 3})


def test_advertised_version():
    assert api.advertised_version(None) == "v1"
    assert api.advertised_version(("base",)) == "v1"
    assert api.advertised_version(CORNERS) == "v2"


def test_request_parse_preserves_legacy_errors():
    with pytest.raises(ApiError, match="'endpoints' must be a list"):
        api.PredictRequest.parse({"endpoints": 3})
    with pytest.raises(ApiError, match="'edits' must be a non-empty list"):
        api.WhatifRequest.parse({"edits": []})


# ---------------------------------------------------------------------------
# corner-aware dispatcher (in-process)


@pytest.fixture(scope="module")
def corner_flow():
    return run_flow("xgate", CORNER_FLOW_CONFIG)


@pytest.fixture(scope="module")
def corner_predictor(corner_flow):
    predictor = TimingPredictor(
        model_config=ModelConfig(map_bins=MAP_BINS, corner_names=CORNERS),
        trainer_config=TrainerConfig(epochs=2))
    predictor.fit(build_corner_samples(corner_flow, map_bins=MAP_BINS,
                                       seed=0))
    return predictor


@pytest.fixture
def corner_dispatcher(corner_flow, corner_predictor):
    factory = SessionFactory(lambda: corner_predictor, corners=CORNERS)
    session = factory.open(pickle.loads(pickle.dumps(corner_flow)))
    return RequestDispatcher({"xgate": session},
                             model_info={"name": "corner"})


def test_health_advertises_v2_and_corners(corner_dispatcher):
    status, body = corner_dispatcher.handle_to_wire("GET", "/health", None)
    assert status == 200
    assert body["api_version"] == "v2"
    assert body["corners"] == list(CORNERS)


def test_designs_reports_served_corners(corner_dispatcher):
    _, body = corner_dispatcher.handle_to_wire("GET", "/designs", None)
    assert body["designs"]["xgate"]["corners"] == list(CORNERS)


def test_predict_reports_every_corner(corner_dispatcher):
    status, body = corner_dispatcher.handle_to_wire(
        "POST", "/predict", {"design": "xgate"})
    assert status == 200
    assert sorted(body["corners"]) == sorted(CORNERS)
    # Legacy block mirrors the primary (first) corner.
    assert body["predictions"] == body["corners"]["fast"]["predictions"]
    assert body["worst"]["corner"] == "slow"  # largest delay derate
    for report in body["corners"].values():
        assert report["wns"] <= 0 or report["tns"] == 0.0


def test_predict_corner_selection(corner_dispatcher):
    _, body = corner_dispatcher.handle_to_wire(
        "POST", "/predict", {"design": "xgate", "corner": "slow"})
    assert body["predictions"] == body["corners"]["slow"]["predictions"]


def test_predict_unknown_corner_is_400(corner_dispatcher):
    status, body = corner_dispatcher.handle_to_wire(
        "POST", "/predict", {"design": "xgate", "corner": "warp"})
    assert status == 400
    assert body["error"]["code"] == "unknown_corner"


def test_v1_pin_suppresses_corner_blocks(corner_dispatcher):
    _, body = corner_dispatcher.handle_to_wire(
        "POST", "/predict", {"api_version": "v1", "design": "xgate"})
    assert "corners" not in body and "worst" not in body
    _, body = corner_dispatcher.handle_to_wire(
        "POST", "/whatif",
        {"api_version": "v1", "design": "xgate", "edits": [EDIT]})
    assert "corners" not in body and "worst" not in body
    assert set(body) == {"design", "revision", "committed", "predictions",
                         "pre_route", "shift", "latency_ms"}


def test_whatif_reports_every_corner(corner_dispatcher):
    status, body = corner_dispatcher.handle_to_wire(
        "POST", "/whatif", {"design": "xgate", "edits": [EDIT]})
    assert status == 200
    assert sorted(body["corners"]) == sorted(CORNERS)
    assert body["predictions"] == body["corners"]["fast"]["predictions"]
    assert body["worst"]["corner"] in CORNERS
    assert (body["corners"]["slow"]["wns"]
            <= body["corners"]["typ"]["wns"]
            <= body["corners"]["fast"]["wns"])


def test_whatif_commit_keeps_corner_baselines(corner_dispatcher):
    _, first = corner_dispatcher.handle_to_wire(
        "POST", "/whatif",
        {"design": "xgate", "edits": [EDIT], "commit": True})
    assert first["committed"] and first["revision"] == 1
    # A post-commit predict must serve the committed multi-corner state.
    _, pred = corner_dispatcher.handle_to_wire(
        "POST", "/predict", {"design": "xgate"})
    assert pred["revision"] == 1
    assert pred["corners"] == first["corners"]


def test_session_rejects_unknown_corner_names(corner_flow,
                                              corner_predictor):
    factory = SessionFactory(lambda: corner_predictor,
                             corners=("fast", "base"))
    with pytest.raises(ValueError, match="base"):
        factory.open(pickle.loads(pickle.dumps(corner_flow)))


def test_registry_meta_includes_corners(corner_predictor,
                                        served_predictor):
    registry = PredictorRegistry()
    meta = registry.register_predictor("mmmc", corner_predictor)
    assert meta["corners"] == list(CORNERS)
    meta = registry.register_predictor("single", served_predictor)
    assert "corners" not in meta


# ---------------------------------------------------------------------------
# one packed forward for all corners; workers-0 == fleet, bit-identical


def test_all_corner_whatif_is_one_packed_forward(corner_flow,
                                                 corner_predictor):
    batcher = MicroBatcher(corner_predictor, max_batch=8, max_wait_s=1e-3)
    try:
        factory = SessionFactory(lambda: corner_predictor, batcher=batcher,
                                 corners=CORNERS)
        session = factory.open(pickle.loads(pickle.dumps(corner_flow)))
        session.predict()  # warm the baseline stack
        before = batcher.batches_run
        result = session.whatif([EDIT])
        # One call = one packed forward covering all three corners.
        assert batcher.batches_run - before == 1
        assert sorted(result["corners"]) == sorted(CORNERS)
    finally:
        batcher.stop()


def test_multi_corner_fleet_matches_in_process(corner_flow,
                                               corner_predictor,
                                               corner_dispatcher):
    stream = [
        ("POST", "/predict", {"design": "xgate"}),
        ("POST", "/whatif", {"design": "xgate", "edits": [EDIT]}),
        ("POST", "/whatif", {"design": "xgate", "edits": [EDIT],
                             "corner": "slow", "commit": True}),
        ("POST", "/predict", {"design": "xgate", "corner": "typ"}),
        ("POST", "/predict", {"design": "xgate", "corner": "warp"}),
    ]
    inproc = []
    for method, path, body in stream:
        status, payload = corner_dispatcher.handle_to_wire(
            method, path, dict(body))
        inproc.append((status, _stable(payload)))

    fleet = TimingFleet(
        corner_predictor.to_artifact(), {"xgate": corner_flow},
        FleetConfig(workers=2, threads=2, microbatch=4, deadline_s=20.0,
                    queue_depth=8, corners=CORNERS)).start()
    gateway = TimingGateway(fleet, port=0).start()
    try:
        status, _, health = http_call(gateway.address, "GET", "/health")
        assert health["api_version"] == "v2"
        assert health["corners"] == list(CORNERS)
        for (method, path, body), (want_status, want) in zip(stream,
                                                             inproc):
            status, _, payload = http_call(gateway.address, method, path,
                                           dict(body))
            assert status == want_status, (path, payload)
            assert _stable(payload) == want, path
    finally:
        gateway.stop(drain_timeout_s=15.0)


def _stable(payload):
    """Strip volatile fields (latency) for bit-exact comparison."""
    if isinstance(payload, dict):
        return {k: _stable(v) for k, v in payload.items()
                if k != "latency_ms"}
    return payload


# ---------------------------------------------------------------------------
# User-defined corners, end to end: parse specs -> flow -> fitted model
# -> dispatcher -> fleet workers re-registering the custom corner from
# the shipped specs (the `repro serve --corners name:V:T` round trip).

CUSTOM_SPECS = ("typ", "hot:0.93:1.2")


def test_custom_corner_serves_end_to_end():
    from repro.timing import CornerSet

    corner_set = CornerSet.parse(",".join(CUSTOM_SPECS))
    assert corner_set.specs == CUSTOM_SPECS
    flow = run_flow("xgate", FlowConfig(scale=0.25, base_seed=0,
                                        corners=corner_set.specs))
    predictor = TimingPredictor(
        model_config=ModelConfig(map_bins=MAP_BINS,
                                 corner_names=corner_set.names),
        trainer_config=TrainerConfig(epochs=1))
    predictor.fit(build_corner_samples(flow, map_bins=MAP_BINS, seed=0))

    factory = SessionFactory(lambda: predictor, corners=corner_set.names)
    session = factory.open(pickle.loads(pickle.dumps(flow)))
    dispatcher = RequestDispatcher({"xgate": session},
                                   model_info={"name": "custom"})
    status, health = dispatcher.handle_to_wire("GET", "/health", None)
    assert status == 200
    assert health["corners"] == ["typ", "hot"]
    status, body = dispatcher.handle_to_wire(
        "POST", "/whatif",
        {"design": "xgate", "edits": [EDIT], "corner": "hot"})
    assert status == 200
    assert sorted(body["corners"]) == ["hot", "typ"]
    assert body["predictions"] == body["corners"]["hot"]["predictions"]
    want = _stable(body)

    # Fleet workers get the *specs* (a fresh process knows nothing about
    # "hot" until it re-parses them) — the answer must match bit for bit.
    fleet = TimingFleet(
        predictor.to_artifact(), {"xgate": flow},
        FleetConfig(workers=1, threads=2, microbatch=4, deadline_s=20.0,
                    queue_depth=8, corners=corner_set.specs)).start()
    gateway = TimingGateway(fleet, port=0).start()
    try:
        status, _, payload = http_call(
            gateway.address, "POST", "/whatif",
            {"design": "xgate", "edits": [EDIT], "corner": "hot"})
        assert status == 200
        assert _stable(payload) == want
    finally:
        gateway.stop(drain_timeout_s=15.0)
