"""Differential tests: incremental serving == cold rebuild, bit for bit."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.masking import build_endpoint_masks
from repro.ml.features import node_features
from repro.placement import compute_layout_maps
from repro.serve import DesignSession, Edit
from repro.timing import CELL_OUT, build_timing_graph

from .conftest import MAP_BINS

SAMPLE_ARRAYS = ("x_cell", "x_net", "masks", "layout_stack")


def snapshot(session):
    return {k: getattr(session.sample, k).copy() for k in SAMPLE_ARRAYS}


def assert_sample_equal(session, ref, context):
    for k, v in ref.items():
        got = getattr(session.sample, k)
        assert np.array_equal(got, v), (
            f"{k} diverged ({context}): "
            f"{int((got != v).sum())} differing entries")


def make_edits(session):
    """A mixed edit batch: move + resize on a register and a comb cell."""
    nl = session.netlist
    g = session.graph

    def alt_type(cid):
        inst = nl.cells[cid]
        kind = inst.type_name.rsplit("_X", 1)[0]
        alts = [t.name for t in nl.library.sizes_of(kind)
                if t.name != inst.type_name]
        return alts[0]

    seq = next(c for c in nl.cells
               if g.kind[g.node_of[nl.cells[c].output_pin]] != CELL_OUT)
    comb = next(c for c in nl.cells
                if g.kind[g.node_of[nl.cells[c].output_pin]] == CELL_OUT)
    die = session.placement.die
    return [
        Edit(op="move", cell=seq, x=die.width * 0.1, y=die.height * 0.2),
        Edit(op="resize", cell=seq, type_name=alt_type(seq)),
        Edit(op="resize", cell=comb, type_name=alt_type(comb)),
        Edit(op="move", cell=comb, x=die.width * 0.8, y=die.height * 0.7),
    ]


def cold_rebuild(session):
    """Re-featurize the session's *current* netlist/placement from scratch."""
    nl, pl = session.netlist, session.placement
    g = build_timing_graph(nl)
    x_cell, x_net = node_features(nl, pl, g)
    masks = build_endpoint_masks(nl, pl, g, map_bins=MAP_BINS,
                                 seed=session.seed)
    maps = compute_layout_maps(nl, pl, m=MAP_BINS, n=MAP_BINS)
    return {"x_cell": x_cell, "x_net": x_net, "masks": masks,
            "layout_stack": maps.stacked()}


class TestWhatif:
    def test_uncommitted_whatif_restores_state_bitforbit(
            self, fresh_flow, served_predictor):
        session = DesignSession(fresh_flow, served_predictor)
        before = snapshot(session)
        preds_before = session.predict()

        result = session.whatif(make_edits(session), commit=False)
        assert result["committed"] is False
        assert result["shift"]["endpoints_changed"] > 0

        assert_sample_equal(session, before, "after uncommitted whatif")
        assert session.predict() == preds_before
        assert session.revision == 0

    def test_committed_whatif_matches_cold_rebuild_bitforbit(
            self, fresh_flow, served_predictor):
        session = DesignSession(fresh_flow, served_predictor)
        edits = make_edits(session)

        result = session.whatif(edits, commit=True)
        assert result["committed"] is True
        assert session.revision == 1

        ref = cold_rebuild(session)
        assert_sample_equal(session, ref, "after committed whatif")
        # The model sees identical inputs, so predictions are identical
        # to a from-scratch pass over the mutated design.
        cold = served_predictor.predict(session.sample)
        assert session.predict() == cold

    def test_whatif_predictions_cover_all_endpoints(
            self, fresh_flow, served_predictor):
        session = DesignSession(fresh_flow, served_predictor)
        result = session.whatif(make_edits(session)[:1])
        assert len(result["predictions"]) == session.sample.n_endpoints
        assert set(result["pre_route"]) == {"wns", "tns"}

    def test_edit_batches_stack_across_commits(
            self, fresh_flow, served_predictor):
        session = DesignSession(fresh_flow, served_predictor)
        edits = make_edits(session)
        session.whatif(edits[:2], commit=True)
        session.whatif(edits[2:], commit=True)
        assert session.revision == 2
        assert_sample_equal(session, cold_rebuild(session),
                            "after two committed batches")

    def test_wire_dict_edits_accepted(self, fresh_flow, served_predictor):
        session = DesignSession(fresh_flow, served_predictor)
        e = make_edits(session)[0]
        result = session.whatif(
            [{"op": "move", "cell": e.cell, "x": e.x, "y": e.y}])
        assert result["design"] == session.name


class TestPredict:
    def test_endpoint_subset(self, fresh_flow, served_predictor):
        session = DesignSession(fresh_flow, served_predictor)
        full = session.predict()
        some = list(full)[:3]
        sub = session.predict(endpoints=some)
        assert sub == {p: full[p] for p in some}

    def test_unknown_endpoint_rejected(self, fresh_flow, served_predictor):
        session = DesignSession(fresh_flow, served_predictor)
        with pytest.raises(ValueError, match="unknown endpoint"):
            session.predict(endpoints=[-1])

    def test_unfitted_predictor_rejected(self, fresh_flow):
        from repro.core import ModelConfig, TimingPredictor

        with pytest.raises(ValueError, match="fitted"):
            DesignSession(fresh_flow,
                          TimingPredictor(ModelConfig(map_bins=MAP_BINS)))


class TestEditValidation:
    def test_bad_op_rejected(self):
        with pytest.raises(ValueError, match="op"):
            Edit.from_dict({"op": "delete", "cell": 0})

    def test_resize_needs_type(self):
        with pytest.raises(ValueError, match="type"):
            Edit.from_dict({"op": "resize", "cell": 0})

    def test_move_needs_coordinates(self):
        with pytest.raises(ValueError, match="'x' and 'y'"):
            Edit.from_dict({"op": "move", "cell": 0, "x": 1.0})

    def test_unknown_cell_rejected(self, fresh_flow, served_predictor):
        session = DesignSession(fresh_flow, served_predictor)
        with pytest.raises(ValueError, match="no cell"):
            session.whatif([Edit(op="move", cell=10 ** 9, x=0.0, y=0.0)])
