"""Semantics of the model variants used in Table II's ablation columns."""

import numpy as np
import pytest

from repro.core import ModelConfig, RestructureTolerantModel

SMALL = dict(hidden=8, layout_embed=8, regressor_hidden=16, map_bins=32)


def _params_count(model):
    return sum(p.data.size for p in model.parameters())


def test_full_has_both_branches():
    m = RestructureTolerantModel(ModelConfig(variant="full", **SMALL))
    assert m.gnn is not None and m.cnn is not None


def test_gnn_only_has_no_cnn():
    m = RestructureTolerantModel(ModelConfig(variant="gnn", **SMALL))
    assert m.gnn is not None and m.cnn is None and m.layout_fc is None


def test_cnn_only_has_no_gnn():
    m = RestructureTolerantModel(ModelConfig(variant="cnn", **SMALL))
    assert m.gnn is None and m.cnn is not None


def test_full_model_is_union_of_parts():
    full = _params_count(
        RestructureTolerantModel(ModelConfig(variant="full", **SMALL)))
    gnn = _params_count(
        RestructureTolerantModel(ModelConfig(variant="gnn", **SMALL)))
    cnn = _params_count(
        RestructureTolerantModel(ModelConfig(variant="cnn", **SMALL)))
    # The regressor's first layer differs in width; everything else is the
    # union, so full < gnn + cnn but > max(gnn, cnn).
    assert max(gnn, cnn) < full < gnn + cnn


def test_seed_controls_initialization():
    a = RestructureTolerantModel(ModelConfig(variant="gnn", seed=1, **SMALL))
    b = RestructureTolerantModel(ModelConfig(variant="gnn", seed=1, **SMALL))
    c = RestructureTolerantModel(ModelConfig(variant="gnn", seed=2, **SMALL))
    pa = np.concatenate([p.data.ravel() for p in a.parameters()])
    pb = np.concatenate([p.data.ravel() for p in b.parameters()])
    pc = np.concatenate([p.data.ravel() for p in c.parameters()])
    np.testing.assert_array_equal(pa, pb)
    assert not np.array_equal(pa, pc)
