"""Tests for training and the predictor API."""

import numpy as np
import pytest

from repro.core import (
    LabelNorm,
    ModelConfig,
    RestructureTolerantModel,
    TimingPredictor,
    Trainer,
    TrainerConfig,
)
from repro.eval import r2_score


SMALL = dict(hidden=16, layout_embed=16, regressor_hidden=32, map_bins=32)


def test_label_norm_roundtrip(tiny_samples):
    norm = LabelNorm.fit(tiny_samples)
    s = tiny_samples[0]
    z = norm.normalize(s.y, s.clock_period)
    back = norm.denormalize(z, s.clock_period)
    np.testing.assert_allclose(back, s.y)


def test_training_reduces_loss(tiny_samples):
    model = RestructureTolerantModel(ModelConfig(variant="full", **SMALL))
    trainer = Trainer(model, TrainerConfig(epochs=25))
    trainer.fit(tiny_samples)
    assert trainer.history[-1] < 0.5 * trainer.history[0]


def test_training_fits_train_set(tiny_samples):
    model = RestructureTolerantModel(ModelConfig(variant="full", **SMALL))
    trainer = Trainer(model, TrainerConfig(epochs=60))
    trainer.fit(tiny_samples)
    for s in tiny_samples:
        pred = trainer.predict(s)
        assert r2_score(s.y, pred) > 0.6


def test_fit_losses_keyed_per_sample_not_per_name(tiny_samples):
    """Regression: augmented datasets repeat design names; the returned
    losses must not collapse duplicates onto one key."""
    s = tiny_samples[0]
    duplicated = [s, s]  # two "placements" of the same named design
    model = RestructureTolerantModel(ModelConfig(variant="gnn", **SMALL))
    trainer = Trainer(model, TrainerConfig(epochs=2))
    final = trainer.fit(duplicated)
    assert set(final) == {(s.name, 0), (s.name, 1)}
    for loss in final.values():
        assert np.isfinite(loss)


def test_predict_before_fit_raises(tiny_samples):
    model = RestructureTolerantModel(ModelConfig(variant="gnn", **SMALL))
    trainer = Trainer(model)
    with pytest.raises(ValueError):
        trainer.predict(tiny_samples[0])


def test_predictor_fit_predict_save_load(tiny_samples, tmp_path):
    predictor = TimingPredictor(
        model_config=ModelConfig(variant="full", **SMALL),
        trainer_config=TrainerConfig(epochs=15))
    predictor.fit(tiny_samples)
    s = tiny_samples[0]
    by_pin = predictor.predict(s)
    assert set(by_pin) == set(int(p) for p in s.endpoint_pins)
    assert predictor.infer_times[s.name] > 0

    path = tmp_path / "model.pkl"
    predictor.save(path)
    loaded = TimingPredictor.load(path)
    again = loaded.predict(s)
    for pin, val in by_pin.items():
        assert again[pin] == pytest.approx(val)


def test_save_before_fit_raises(tmp_path):
    predictor = TimingPredictor(
        model_config=ModelConfig(variant="gnn", **SMALL))
    with pytest.raises(ValueError):
        predictor.save(tmp_path / "m.pkl")


def test_training_is_deterministic(tiny_samples):
    preds = []
    for _ in range(2):
        model = RestructureTolerantModel(
            ModelConfig(variant="gnn", seed=7, **SMALL))
        trainer = Trainer(model, TrainerConfig(epochs=5, seed=7))
        trainer.fit(tiny_samples)
        preds.append(trainer.predict(tiny_samples[0]))
    np.testing.assert_allclose(preds[0], preds[1])
