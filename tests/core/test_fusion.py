"""Tests for the multimodal fusion model and its variants."""

import numpy as np
import pytest

from repro.core import ModelConfig, RestructureTolerantModel


@pytest.mark.parametrize("variant", ["full", "gnn", "cnn"])
def test_forward_shapes(variant, tiny_samples):
    sample = tiny_samples[0]
    model = RestructureTolerantModel(
        ModelConfig(variant=variant, hidden=8, layout_embed=8,
                    regressor_hidden=16, map_bins=32))
    pred = model.forward(sample)
    assert pred.shape == (sample.n_endpoints,)
    assert np.isfinite(pred).all()
    model._cache = None


def test_variant_validation():
    with pytest.raises(ValueError):
        ModelConfig(variant="bogus")


def test_backward_populates_all_parameters(tiny_samples):
    """After a couple of optimization steps every parameter receives
    gradient.  (At step 0 the zero-initialized residual branch output
    layers of the GNN block gradient flow into their earlier layers by
    construction, so we take two steps first.)"""
    from repro.nn import Adam

    sample = tiny_samples[0]
    model = RestructureTolerantModel(
        ModelConfig(variant="full", hidden=8, layout_embed=8,
                    regressor_hidden=16, map_bins=32))
    opt = Adam(model.parameters(), lr=1e-2)
    for _ in range(2):
        pred = model.forward(sample)
        opt.zero_grad()
        model.backward(np.ones_like(pred))
        opt.step()
    pred = model.forward(sample)
    model.zero_grad()
    model.backward(np.ones_like(pred))
    for p in model.parameters():
        assert p.grad.shape == p.data.shape
    nonzero = sum(1 for p in model.parameters()
                  if np.abs(p.grad).sum() > 0)
    assert nonzero >= 0.8 * len(model.parameters())


def test_gnn_only_ignores_layout(tiny_samples):
    sample = tiny_samples[0]
    model = RestructureTolerantModel(
        ModelConfig(variant="gnn", hidden=8, regressor_hidden=16,
                    map_bins=32))
    pred1 = model.forward(sample)
    model._cache = None
    _drain(model)
    sample.layout_stack = sample.layout_stack + 100.0
    try:
        pred2 = model.forward(sample)
        model._cache = None
        _drain(model)
    finally:
        sample.layout_stack = sample.layout_stack - 100.0
    np.testing.assert_allclose(pred1, pred2)


def test_cnn_only_ignores_netlist_features(tiny_samples):
    sample = tiny_samples[0]
    model = RestructureTolerantModel(
        ModelConfig(variant="cnn", layout_embed=8, regressor_hidden=16,
                    map_bins=32))
    pred1 = model.forward(sample)
    model._cache = None
    _drain(model)
    sample.x_net = sample.x_net + 7.0
    try:
        pred2 = model.forward(sample)
        model._cache = None
        _drain(model)
    finally:
        sample.x_net = sample.x_net - 7.0
    np.testing.assert_allclose(pred1, pred2)


def test_masking_differentiates_endpoints(tiny_samples):
    """Two endpooints with different critical regions must receive
    different layout embeddings (unless their GNN parts also coincide)."""
    sample = tiny_samples[0]
    model = RestructureTolerantModel(
        ModelConfig(variant="cnn", layout_embed=8, regressor_hidden=16,
                    map_bins=32))
    pred = model.forward(sample)
    model._cache = None
    _drain(model)
    masks = sample.masks
    # Find two endpoints with different masks.
    for i in range(1, len(masks)):
        if not np.array_equal(masks[0], masks[i]):
            assert pred[0] != pred[i]
            return
    pytest.skip("all masks identical in tiny design")


def _drain(model):
    for m in model.modules():
        cache = getattr(m, "_cache", None)
        if isinstance(cache, list):
            cache.clear()
