"""Versioned predictor artifacts: round-trip, legacy, rejection."""

from __future__ import annotations

import pickle

import pytest

from repro.core import (
    ARTIFACT_SCHEMA_VERSION,
    ModelConfig,
    TimingPredictor,
    TrainerConfig,
)
from repro.core.predictor import ARTIFACT_FORMAT
from repro.nn import state_dict


@pytest.fixture(scope="module")
def fitted(tiny_sample) -> TimingPredictor:
    predictor = TimingPredictor(
        model_config=ModelConfig(map_bins=32, variant="gnn"),
        trainer_config=TrainerConfig(epochs=2))
    predictor.fit([tiny_sample])
    return predictor


class TestRoundTrip:
    def test_save_load_roundtrip_predictions(self, fitted, tiny_sample,
                                             tmp_path):
        path = tmp_path / "model.pkl"
        fitted.save(path)
        loaded = TimingPredictor.load(path)
        assert loaded.predict(tiny_sample) == fitted.predict(tiny_sample)
        assert loaded.model_config == fitted.model_config

    def test_artifact_is_plain_data(self, fitted):
        """The payload must not pickle project classes (version-fragile)."""
        payload = fitted.to_artifact()
        assert payload["format"] == ARTIFACT_FORMAT
        assert payload["schema_version"] == ARTIFACT_SCHEMA_VERSION
        assert isinstance(payload["model_config"], dict)
        assert isinstance(payload["norm"], dict)
        assert set(payload["norm"]) == {"mean", "std"}

    def test_unfitted_predictor_refuses_to_save(self, tmp_path):
        predictor = TimingPredictor(ModelConfig(map_bins=32))
        with pytest.raises(ValueError, match="fit"):
            predictor.save(tmp_path / "model.pkl")


class TestLegacy:
    def make_legacy_payload(self, fitted):
        """The exact pre-versioning on-disk format."""
        return {
            "model_config": fitted.model_config,
            "state": state_dict(fitted.model),
            "norm": (fitted.trainer.norm.mean, fitted.trainer.norm.std),
        }

    def test_legacy_pickle_loads_with_deprecation_warning(
            self, fitted, tiny_sample, tmp_path):
        path = tmp_path / "legacy.pkl"
        with open(path, "wb") as fh:
            pickle.dump(self.make_legacy_payload(fitted), fh)
        with pytest.warns(DeprecationWarning, match="legacy"):
            loaded = TimingPredictor.load(path)
        assert loaded.predict(tiny_sample) == fitted.predict(tiny_sample)

    def test_legacy_resave_produces_versioned_artifact(
            self, fitted, tmp_path):
        path = tmp_path / "legacy.pkl"
        with open(path, "wb") as fh:
            pickle.dump(self.make_legacy_payload(fitted), fh)
        with pytest.warns(DeprecationWarning):
            loaded = TimingPredictor.load(path)
        assert (loaded.to_artifact()["schema_version"]
                == ARTIFACT_SCHEMA_VERSION)


class TestRejection:
    def test_future_schema_version_rejected(self, fitted, tmp_path):
        payload = fitted.to_artifact()
        payload["schema_version"] = ARTIFACT_SCHEMA_VERSION + 1
        path = tmp_path / "future.pkl"
        with open(path, "wb") as fh:
            pickle.dump(payload, fh)
        with pytest.raises(ValueError) as exc_info:
            TimingPredictor.load(path)
        # The error must be actionable: name the versions and the file.
        message = str(exc_info.value)
        assert str(ARTIFACT_SCHEMA_VERSION + 1) in message
        assert str(ARTIFACT_SCHEMA_VERSION) in message
        assert "future.pkl" in message

    def test_non_dict_payload_rejected(self, tmp_path):
        path = tmp_path / "junk.pkl"
        with open(path, "wb") as fh:
            pickle.dump([1, 2, 3], fh)
        with pytest.raises(ValueError, match="not a .* artifact"):
            TimingPredictor.load(path)

    def test_payload_missing_model_config_rejected(self, fitted):
        payload = fitted.to_artifact()
        del payload["model_config"]
        with pytest.raises(ValueError):
            TimingPredictor.from_artifact(payload)


class TestDefaultConfigIsolation:
    """Guards the definition-time-default bug: each instance must get its
    own freshly constructed config object."""

    def test_predictor_default_configs_are_fresh_per_instance(self):
        a = TimingPredictor()
        b = TimingPredictor()
        assert a.model_config == b.model_config
        assert a.model_config is not b.model_config
        assert a.trainer.config is not b.trainer.config

    def test_flow_config_default_is_fresh_per_call(self):
        import inspect

        from repro.flow import run_flow

        # No signature in the codebase may carry a mutable/dataclass
        # default constructed at definition time.
        sig = inspect.signature(run_flow)
        default = sig.parameters["config"].default
        assert default is None
