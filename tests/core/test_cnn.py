"""Tests for the layout CNN encoder."""

import numpy as np
import pytest

from repro.core import LayoutEncoder
from repro.utils import spawn_rng


def test_output_resolution_is_quarter():
    rng = spawn_rng("cnn-test")
    enc = LayoutEncoder(rng)
    for side in (32, 64):
        out = enc.forward(np.random.default_rng(0).random((3, side, side)))
        assert out.shape == ((side // 4) ** 2,)
        _drain(enc)


def test_rejects_wrong_channel_count():
    enc = LayoutEncoder(spawn_rng("cnn-test"))
    with pytest.raises(ValueError):
        enc.forward(np.zeros((2, 32, 32)))


def test_rejects_indivisible_size():
    enc = LayoutEncoder(spawn_rng("cnn-test"))
    with pytest.raises(ValueError):
        enc.forward(np.zeros((3, 30, 30)))


def test_backward_accumulates_conv_grads():
    rng = spawn_rng("cnn-test")
    enc = LayoutEncoder(rng)
    out = enc.forward(np.random.default_rng(1).random((3, 32, 32)))
    enc.zero_grad()
    enc.backward(np.ones_like(out))
    total = sum(float(np.abs(p.grad).sum()) for p in enc.parameters())
    assert total > 0


def test_forward_depends_on_input():
    rng = spawn_rng("cnn-test")
    enc = LayoutEncoder(rng)
    a = enc.forward(np.zeros((3, 32, 32)))
    _drain(enc)
    b = enc.forward(np.ones((3, 32, 32)))
    _drain(enc)
    assert not np.allclose(a, b)


def _drain(enc):
    for m in enc.modules():
        cache = getattr(m, "_cache", None)
        if isinstance(cache, list):
            cache.clear()
