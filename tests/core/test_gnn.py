"""Tests for the customized level-wise GNN, including full gradient checks."""

import numpy as np
import pytest

from repro.core.gnn import EndpointGNN
from repro.ml import CELL_FEATURE_DIM, NET_FEATURE_DIM
from repro.nn import numerical_grad


@pytest.fixture(scope="module")
def gnn_and_sample(tiny_samples):
    sample = tiny_samples[0]
    rng = np.random.default_rng(0)
    gnn = EndpointGNN(hidden=8, cell_feat_dim=CELL_FEATURE_DIM,
                      net_feat_dim=NET_FEATURE_DIM, rng=rng)
    # Perturb all parameters off the zero-init so the gradcheck does not
    # probe exactly at ReLU kinks (non-differentiable points).
    for p in gnn.parameters():
        p.data += rng.normal(0.0, 0.05, size=p.data.shape)
    return gnn, sample


def test_forward_shape_and_finiteness(gnn_and_sample):
    gnn, sample = gnn_and_sample
    h = gnn.forward(sample)
    gnn._cache.pop()
    assert h.shape == (sample.n_nodes, 8)
    assert np.isfinite(h).all()


def test_forward_deterministic(gnn_and_sample):
    gnn, sample = gnn_and_sample
    a = gnn.forward(sample)
    gnn._cache.pop()
    b = gnn.forward(sample)
    gnn._cache.pop()
    np.testing.assert_array_equal(a, b)


def test_source_nodes_get_source_embedding(gnn_and_sample):
    gnn, sample = gnn_and_sample
    h = gnn.forward(sample)
    gnn._cache.pop()
    for node in sample.source_nodes[:5]:
        np.testing.assert_allclose(h[node], gnn.source_emb.data)


def test_backward_runs_and_populates_grads(gnn_and_sample):
    gnn, sample = gnn_and_sample
    h = gnn.forward(sample)
    grad_h = np.zeros_like(h)
    grad_h[sample.endpoint_nodes] = 1.0
    gnn.zero_grad()
    gnn.backward(grad_h)
    total = sum(float(np.abs(p.grad).sum()) for p in gnn.parameters())
    assert total > 0


def test_gnn_gradcheck_endpoint_loss(gnn_and_sample):
    """Full-model numerical gradient check on a few parameters.

    Uses loss = 0.5 * sum(h[endpoints]²); checks random entries of each
    parameter tensor against central differences.
    """
    gnn, sample = gnn_and_sample
    rng = np.random.default_rng(42)

    def loss_value() -> float:
        h = gnn.forward(sample)
        gnn._cache.pop()
        gnn._sample = None
        e = h[sample.endpoint_nodes]
        return 0.5 * float((e * e).sum())

    # Analytic gradients.
    h = gnn.forward(sample)
    grad_h = np.zeros_like(h)
    grad_h[sample.endpoint_nodes] = h[sample.endpoint_nodes]
    gnn.zero_grad()
    gnn.backward(grad_h)

    for p in gnn.parameters():
        flat = p.data.ravel()
        gflat = p.grad.ravel()
        idxs = rng.choice(flat.size, size=min(4, flat.size), replace=False)
        for i in idxs:
            eps = 1e-6
            old = flat[i]
            flat[i] = old + eps
            plus = loss_value()
            flat[i] = old - eps
            minus = loss_value()
            flat[i] = old
            num = (plus - minus) / (2 * eps)
            assert gflat[i] == pytest.approx(num, rel=1e-4, abs=1e-6)


def test_max_aggregation_routes_per_dimension(tiny_samples):
    """Increasing the strongest predecessor embedding must affect the cell
    node; the GNN uses elementwise max over predecessors."""
    sample = tiny_samples[0]
    rng = np.random.default_rng(1)
    gnn = EndpointGNN(hidden=4, cell_feat_dim=CELL_FEATURE_DIM,
                      net_feat_dim=NET_FEATURE_DIM, rng=rng)
    # Use a plan with a multi-predecessor cell node.
    plan = next(p for p in sample.plans
                if len(p.cell_nodes) and p.cell_preds.shape[1] >= 2)
    h = gnn.forward(sample)
    gnn._cache.pop()
    node = int(plan.cell_nodes[0])
    preds = plan.cell_preds[0]
    valid = preds[preds >= 0]
    maxv = h[valid].max(axis=0)
    # Reconstruct the pre-activation manually through f_c1/f_c2
    # (+ the residual identity path of the cell update).
    a = gnn.f_c1.forward(maxv[None, :])
    b = gnn.f_c2.forward(sample.x_cell[[node]])
    expect = np.maximum(a + b + maxv[None, :], 0.0)[0]
    for seq in (gnn.f_c1, gnn.f_c2):
        for layer in seq.layers:
            if hasattr(layer, "_cache"):
                layer._cache.clear()
    np.testing.assert_allclose(h[node], expect)
