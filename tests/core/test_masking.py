"""Tests for endpoint-wise critical-region masking."""

import numpy as np
import pytest

from repro.core import (
    build_endpoint_masks,
    longest_level_path,
    path_net_edges,
    rasterize_region,
)
from repro.timing import NET_SINK, build_timing_graph
from repro.utils import spawn_rng


def test_longest_path_steps_one_level_at_a_time(tiny_placed):
    nl, pl = tiny_placed
    g = build_timing_graph(nl)
    rng = spawn_rng("test-mask")
    for ep in g.endpoints[:10]:
        path = longest_level_path(g, int(ep), rng)
        assert path[-1] == ep
        levels = [g.level[v] for v in path]
        # Source-first, strictly +1 per step: it is a LONGEST path.
        assert levels[0] == 0
        assert levels == list(range(len(path)))


def test_longest_path_edges_are_real_edges(tiny_placed):
    nl, pl = tiny_placed
    g = build_timing_graph(nl)
    rng = spawn_rng("test-mask")
    all_edges = set(nl.net_edges())
    path = longest_level_path(g, int(g.endpoints[0]), rng)
    for drv, snk in path_net_edges(g, path):
        assert (drv, snk) in all_edges


def test_rasterize_region_covers_bbox(tiny_placed):
    nl, pl = tiny_placed
    drv, snk = next(iter(nl.net_edges()))
    mask = rasterize_region(nl, pl, [(drv, snk)], 8, 8)
    assert mask.any()
    # The bins containing both pins are covered.
    die = pl.die
    for pid in (drv, snk):
        x, y = pl.pin_position(nl, pid)
        i = min(7, int(x / (die.width / 8)))
        j = min(7, int(y / (die.height / 8)))
        assert mask[i, j]


def test_rasterize_empty_edges_gives_empty_mask(tiny_placed):
    nl, pl = tiny_placed
    mask = rasterize_region(nl, pl, [], 8, 8)
    assert not mask.any()


def test_build_endpoint_masks_shape_and_nonempty(tiny_placed):
    nl, pl = tiny_placed
    g = build_timing_graph(nl)
    masks = build_endpoint_masks(nl, pl, g, map_bins=32)
    assert masks.shape == (len(g.endpoints), 64)
    assert masks.dtype == bool
    # Every endpoint with a nontrivial cone covers at least one bin.
    assert (masks.sum(axis=1) > 0).all()


def test_masks_deterministic(tiny_placed):
    nl, pl = tiny_placed
    g = build_timing_graph(nl)
    a = build_endpoint_masks(nl, pl, g, map_bins=32, seed=3)
    b = build_endpoint_masks(nl, pl, g, map_bins=32, seed=3)
    np.testing.assert_array_equal(a, b)


def test_map_bins_must_divide_by_four(tiny_placed):
    nl, pl = tiny_placed
    g = build_timing_graph(nl)
    with pytest.raises(ValueError):
        build_endpoint_masks(nl, pl, g, map_bins=30)
