"""Tests for counters, gauges and histogram summaries."""

from __future__ import annotations

import math
import threading

import pytest

from repro.obs.metrics import Histogram, MetricsRegistry, get_metrics


@pytest.fixture
def registry() -> MetricsRegistry:
    return MetricsRegistry()


def test_counter_get_or_create_and_inc(registry):
    c = registry.counter("sta.runs")
    assert registry.counter("sta.runs") is c
    c.inc()
    c.inc(5)
    assert c.value == 6


def test_gauge_last_write_wins(registry):
    g = registry.gauge("trainer.epoch_loss")
    g.set(3.0)
    g.set(1.5)
    assert g.value == 1.5


def test_type_conflict_raises(registry):
    registry.counter("x")
    with pytest.raises(TypeError):
        registry.gauge("x")


def test_histogram_empty_summary():
    h = Histogram("h")
    s = h.summary()
    assert s["count"] == 0
    assert math.isnan(s["p50"]) and math.isnan(s["max"])


def test_histogram_summary_percentiles():
    h = Histogram("lat")
    for v in range(1, 101):          # 1..100
        h.observe(float(v))
    s = h.summary()
    assert s["count"] == 100
    assert s["total"] == pytest.approx(5050.0)
    assert s["mean"] == pytest.approx(50.5)
    assert s["max"] == 100.0
    assert s["p50"] == pytest.approx(50.0, abs=1.0)
    assert s["p95"] == pytest.approx(95.0, abs=1.0)


def test_histogram_reservoir_keeps_exact_count_and_max():
    h = Histogram("big", max_samples=64)
    for v in range(1000):
        h.observe(float(v))
    s = h.summary()
    assert s["count"] == 1000          # exact even past the reservoir
    assert s["max"] == 999.0
    assert len(h._values) == 64


def test_histogram_thread_safety():
    h = Histogram("conc")

    def worker():
        for _ in range(1000):
            h.observe(1.0)

    threads = [threading.Thread(target=worker) for _ in range(4)]
    for th in threads:
        th.start()
    for th in threads:
        th.join()
    assert h.count == 4000
    assert h.summary()["total"] == pytest.approx(4000.0)


def test_snapshot_mixes_kinds(registry):
    registry.counter("a").inc(2)
    registry.gauge("b").set(0.5)
    registry.histogram("c").observe(1.0)
    snap = registry.snapshot()
    assert snap["a"] == 2
    assert snap["b"] == 0.5
    assert snap["c"]["count"] == 1


def test_global_registry_is_shared():
    assert get_metrics() is get_metrics()
