"""Tests for trace aggregation into the Table III stage report."""

from __future__ import annotations

import json

import pytest

from repro.obs.profile import FLOW_STAGES, MODEL_STAGES, aggregate_trace
from repro.obs.trace import Tracer


def _span(name, dur, design=None, **attrs):
    if design is not None:
        attrs["design"] = design
    return {"type": "span", "name": name, "span_id": 1, "parent_id": None,
            "thread": 0, "ts": 0.0, "dur": dur, "attrs": attrs}


def synthetic_trace():
    return [
        _span("flow.place", 1.0, "jpeg", stage="place"),
        _span("flow.opt", 4.0, "jpeg", stage="opt"),
        _span("flow.route", 2.0, "jpeg", stage="route"),
        _span("flow.sta", 1.0, "jpeg", stage="sta"),
        _span("model.pre", 0.5, "jpeg", stage="pre"),
        _span("model.infer", 0.2, "jpeg", stage="infer"),
        _span("sta.run", 0.4, "jpeg"),
        _span("sta.run", 0.6, "jpeg"),
        {"type": "event", "name": "log", "span_id": 9, "parent_id": None,
         "thread": 0, "ts": 0.0, "attrs": {"message": "x"}},
    ]


def test_aggregate_groups_by_name():
    report = aggregate_trace(synthetic_trace())
    assert report.n_events == 9
    assert report.stages["sta.run"].count == 2
    assert report.stages["sta.run"].total_s == pytest.approx(1.0)
    assert report.stages["sta.run"].mean_s == pytest.approx(0.5)
    assert report.stages["sta.run"].max_s == pytest.approx(0.6)


def test_table3_rows_cover_all_stages():
    report = aggregate_trace(synthetic_trace())
    (row,) = report.table3_rows()
    assert row["design"] == "jpeg"
    for s in FLOW_STAGES:
        assert row[f"flow.{s}"] > 0.0
    for s in MODEL_STAGES:
        assert row[f"model.{s}"] > 0.0
    # Table III convention: flow total excludes place (it is paid by both
    # the reference flow and the predictor's input generation).
    assert row["flow_total"] == pytest.approx(7.0)
    assert row["model_total"] == pytest.approx(0.7)
    assert row["speedup"] == pytest.approx(10.0)


def test_multiple_designs_aggregate_independently():
    trace = synthetic_trace() + [
        _span("flow.opt", 8.0, "sha3", stage="opt"),
        _span("flow.route", 1.0, "sha3", stage="route"),
        _span("flow.sta", 1.0, "sha3", stage="sta"),
        _span("model.pre", 1.0, "sha3", stage="pre"),
        _span("model.infer", 1.0, "sha3", stage="infer"),
    ]
    report = aggregate_trace(trace)
    rows = {r["design"]: r for r in report.table3_rows()}
    assert rows["sha3"]["flow_total"] == pytest.approx(10.0)
    assert rows["sha3"]["speedup"] == pytest.approx(5.0)
    assert rows["jpeg"]["speedup"] == pytest.approx(10.0)


def test_aggregate_from_jsonl_path(tmp_path):
    path = tmp_path / "trace.jsonl"
    with open(path, "w", encoding="utf-8") as fh:
        for ev in synthetic_trace():
            fh.write(json.dumps(ev) + "\n")
    report = aggregate_trace(str(path))
    assert report.stages["flow.opt"].total_s == pytest.approx(4.0)


def test_format_lists_every_stage():
    text = aggregate_trace(synthetic_trace()).format()
    for name in ("flow.place", "flow.opt", "flow.route", "flow.sta",
                 "model.pre", "model.infer", "speedup", "jpeg"):
        assert name in text


def test_to_dict_json_serializable():
    report = aggregate_trace(synthetic_trace())
    payload = json.loads(json.dumps(report.to_dict()))
    assert payload["stages"]["flow.opt"]["total_s"] == pytest.approx(4.0)
    assert payload["table3"][0]["design"] == "jpeg"


def test_live_tracer_roundtrip_through_stage_timer():
    """StageTimer spans + aggregate = the old stages dict, per design."""
    from repro.utils.timer import StageTimer
    import repro.utils.timer as timer_mod

    tracer = Tracer(enabled=True)
    old = timer_mod.get_tracer
    timer_mod.get_tracer = lambda: tracer
    try:
        t = StageTimer(design="toy")
        with t.stage("place"):
            pass
        with t.stage("sta"):
            pass
    finally:
        timer_mod.get_tracer = old
    report = aggregate_trace(tracer.events())
    assert report.stage_seconds("toy", "place") == pytest.approx(
        t.get("place"), abs=1e-4)
    assert report.stage_seconds("toy", "sta") == pytest.approx(
        t.get("sta"), abs=1e-4)
