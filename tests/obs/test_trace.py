"""Tests for the span tracer."""

from __future__ import annotations

import json
import threading

import pytest

from repro.obs.trace import JsonlSink, Tracer, configure_tracing, get_tracer


@pytest.fixture
def tracer() -> Tracer:
    return Tracer(enabled=True)


def test_disabled_tracer_records_nothing_but_still_times():
    t = Tracer(enabled=False)
    with t.span("work", design="x") as sp:
        pass
    assert t.events() == []
    assert sp.duration >= 0.0     # duration is measured regardless


def test_span_event_schema(tracer):
    with tracer.span("sta.run", design="xgate", n_nodes=10):
        pass
    (ev,) = tracer.events()
    assert ev["type"] == "span"
    assert ev["name"] == "sta.run"
    assert ev["attrs"] == {"design": "xgate", "n_nodes": 10}
    assert ev["parent_id"] is None
    assert ev["dur"] >= 0.0
    assert ev["span_id"] >= 1


def test_nested_spans_build_parent_chain(tracer):
    with tracer.span("outer"):
        with tracer.span("middle"):
            with tracer.span("inner"):
                pass
    inner, middle, outer = tracer.events()   # completion order
    assert inner["name"] == "inner"
    assert inner["parent_id"] == middle["span_id"]
    assert middle["parent_id"] == outer["span_id"]
    assert outer["parent_id"] is None


def test_span_set_attrs_inside_block(tracer):
    with tracer.span("opt.pass") as sp:
        sp.set(wns=-12.5)
    (ev,) = tracer.events()
    assert ev["attrs"]["wns"] == -12.5


def test_span_records_exception(tracer):
    with pytest.raises(RuntimeError):
        with tracer.span("boom"):
            raise RuntimeError("no")
    (ev,) = tracer.events()
    assert ev["attrs"]["error"] == "RuntimeError"


def test_instant_event(tracer):
    with tracer.span("outer"):
        tracer.event("log", level="WARNING", message="hi")
    log_ev = tracer.events()[0]
    assert log_ev["type"] == "event"
    assert log_ev["attrs"]["level"] == "WARNING"
    assert log_ev["parent_id"] is not None


def test_threads_have_independent_span_stacks(tracer):
    errors = []

    def worker(i: int) -> None:
        try:
            for _ in range(50):
                with tracer.span(f"t{i}.outer"):
                    with tracer.span(f"t{i}.inner"):
                        pass
        except Exception as exc:  # pragma: no cover
            errors.append(exc)

    threads = [threading.Thread(target=worker, args=(i,)) for i in range(4)]
    for th in threads:
        th.start()
    for th in threads:
        th.join()
    assert not errors
    events = tracer.events()
    assert len(events) == 4 * 50 * 2
    # Every inner span's parent is an outer span from the SAME thread.
    by_id = {ev["span_id"]: ev for ev in events}
    for ev in events:
        if ev["name"].endswith(".inner"):
            parent = by_id[ev["parent_id"]]
            assert parent["thread"] == ev["thread"]
            assert parent["name"] == ev["name"].replace(".inner", ".outer")


def test_jsonl_sink_roundtrip(tmp_path, tracer):
    path = tmp_path / "trace.jsonl"
    tracer.add_sink(JsonlSink(str(path)))
    with tracer.span("a", design="d"):
        pass
    tracer.event("log", message="m")
    lines = [json.loads(ln) for ln in
             path.read_text().strip().splitlines()]
    assert [ev["name"] for ev in lines] == ["a", "log"]
    assert lines[0]["attrs"]["design"] == "d"


def test_configure_tracing_global(tmp_path):
    tracer = get_tracer()
    was_enabled = tracer.enabled
    try:
        configure_tracing(enabled=True, jsonl_path=str(tmp_path / "t.jsonl"))
        assert tracer.enabled
        configure_tracing(enabled=False)
        assert not tracer.enabled
    finally:
        tracer.reset()
        if was_enabled:
            tracer.enable()
