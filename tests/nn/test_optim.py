"""Tests for optimizers and losses."""

import numpy as np
import pytest

from repro.nn import SGD, Adam, Linear, Parameter, huber_loss, mse_loss


def quadratic_step(optimizer_cls, **kwargs):
    """Minimize ||p||² and return the trajectory of |p|."""
    p = Parameter(np.array([5.0, -3.0]))
    opt = optimizer_cls([p], **kwargs)
    norms = []
    for _ in range(200):
        opt.zero_grad()
        p.grad += 2 * p.data
        opt.step()
        norms.append(np.abs(p.data).max())
    return norms


def test_sgd_converges():
    norms = quadratic_step(SGD, lr=0.1)
    assert norms[-1] < 1e-6


def test_sgd_momentum_converges():
    norms = quadratic_step(SGD, lr=0.05, momentum=0.9)
    assert norms[-1] < 1e-4


def test_adam_converges():
    norms = quadratic_step(Adam, lr=0.3)
    assert norms[-1] < 1e-3


def test_lr_must_be_positive():
    with pytest.raises(ValueError):
        SGD([], lr=0.0)
    with pytest.raises(ValueError):
        Adam([], lr=-1.0)


def test_mse_loss_value_and_grad():
    pred = np.array([1.0, 2.0, 3.0])
    target = np.array([1.0, 1.0, 1.0])
    loss, grad = mse_loss(pred, target)
    assert loss == pytest.approx(5.0 / 3.0)
    np.testing.assert_allclose(grad, 2.0 / 3.0 * (pred - target))


def test_mse_loss_shape_mismatch():
    with pytest.raises(ValueError):
        mse_loss(np.zeros(3), np.zeros(4))


def test_huber_matches_mse_for_small_errors():
    pred = np.array([0.1, -0.2])
    target = np.zeros(2)
    h, hg = huber_loss(pred, target, delta=10.0)
    m, mg = mse_loss(pred, target)
    assert h == pytest.approx(m / 2)
    np.testing.assert_allclose(hg, mg / 2)


def test_huber_linear_for_large_errors():
    pred = np.array([100.0])
    target = np.zeros(1)
    _, grad = huber_loss(pred, target, delta=1.0)
    assert grad[0] == pytest.approx(1.0)


def test_training_reduces_loss_on_regression(rng):
    layer = Linear(3, 1, rng=rng)
    opt = Adam(layer.parameters(), lr=0.05)
    x = rng.normal(size=(64, 3))
    w_true = np.array([[1.0, -2.0, 0.5]])
    y = x @ w_true.T
    first = None
    for _ in range(600):
        pred = layer.forward(x)
        loss, grad = mse_loss(pred, y)
        if first is None:
            first = loss
        opt.zero_grad()
        layer.backward(grad)
        opt.step()
    assert loss < 0.01 * first
    np.testing.assert_allclose(layer.weight.data, w_true, atol=0.05)
