"""Workspace arena semantics: borrow/rewind/trim and thread-locality."""

from __future__ import annotations

import threading

import numpy as np

from repro.nn import Workspace, current_workspace, workspace, ws_empty


def test_ws_empty_without_active_workspace_allocates_fresh():
    a = ws_empty((3, 4))
    b = ws_empty((3, 4))
    assert a is not b
    assert a.shape == (3, 4) and a.dtype == np.float64


def test_same_shape_takes_are_distinct_within_one_epoch():
    ws = Workspace()
    with workspace(ws):
        a = ws_empty((8,))
        b = ws_empty((8,))
        assert a is not b


def test_buffers_reused_in_order_across_epochs():
    ws = Workspace()
    with workspace(ws):
        a1 = ws_empty((8,), np.float32)
        b1 = ws_empty((8,), np.float32)
    with workspace(ws):
        assert ws_empty((8,), np.float32) is a1
        assert ws_empty((8,), np.float32) is b1
        # Third take in a later epoch grows the pool rather than aliasing.
        c = ws_empty((8,), np.float32)
        assert c is not a1 and c is not b1


def test_shape_and_dtype_key_pools_independently():
    ws = Workspace()
    with workspace(ws):
        a = ws_empty((4,), np.float64)
        b = ws_empty((4,), np.float32)
        c = ws_empty((2, 2), np.float64)
    assert a.dtype == np.float64 and b.dtype == np.float32
    assert a is not c
    assert ws.describe()["buffers"] == 3


def test_begin_trims_pools_over_the_byte_cap():
    ws = Workspace(max_bytes=64)
    with workspace(ws):
        ws_empty((1024,))
    assert ws.nbytes > 64
    with workspace(ws):  # begin() sees the overflow and releases
        pass
    assert ws.nbytes == 0
    assert ws.describe()["trims"] == 1


def test_release_drops_everything():
    ws = Workspace()
    with workspace(ws):
        ws_empty((16, 16))
    assert ws.nbytes > 0
    ws.release()
    assert ws.nbytes == 0
    assert ws.describe()["buffers"] == 0


def test_nested_activation_restores_previous():
    outer, inner = Workspace(), Workspace()
    assert current_workspace() is None
    with workspace(outer):
        assert current_workspace() is outer
        with workspace(inner):
            assert current_workspace() is inner
        assert current_workspace() is outer
    assert current_workspace() is None


def test_workspace_none_is_a_no_op_activation():
    with workspace(None):
        a = ws_empty((5,))
        b = ws_empty((5,))
    assert a is not b


def test_active_workspace_is_thread_local():
    ws = Workspace()
    seen = {}

    def other_thread():
        seen["ws"] = current_workspace()

    with workspace(ws):
        t = threading.Thread(target=other_thread)
        t.start()
        t.join()
    assert seen["ws"] is None


def test_hit_miss_accounting():
    ws = Workspace()
    with workspace(ws):
        ws_empty((8,))
    with workspace(ws):
        ws_empty((8,))
    stats = ws.describe()
    assert stats["misses"] == 1 and stats["hits"] == 1
