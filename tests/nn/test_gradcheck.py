"""Tests for the gradient-checking utilities themselves."""

import numpy as np
import pytest

from repro.nn import Linear, check_layer_gradients, numerical_grad


def test_numerical_grad_on_quadratic():
    x = np.array([1.0, -2.0, 3.0])

    def fn():
        return float((x ** 2).sum())

    grad = numerical_grad(fn, x)
    np.testing.assert_allclose(grad, 2 * x, atol=1e-5)
    # The array itself is restored.
    np.testing.assert_allclose(x, [1.0, -2.0, 3.0])


def test_numerical_grad_2d():
    w = np.arange(6.0).reshape(2, 3)

    def fn():
        return float((w * w).sum() / 2)

    np.testing.assert_allclose(numerical_grad(fn, w), w, atol=1e-5)


def test_check_layer_gradients_catches_broken_backward(rng):
    class Broken(Linear):
        def backward(self, grad_output):
            out = super().backward(grad_output)
            return out * 1.5  # wrong input gradient

    with pytest.raises(AssertionError):
        check_layer_gradients(Broken(3, 2, rng=rng),
                              rng.normal(size=(4, 3)))


def test_check_layer_gradients_accepts_correct_layer(rng):
    check_layer_gradients(Linear(3, 2, rng=rng), rng.normal(size=(4, 3)))
