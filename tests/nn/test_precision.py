"""Precision tiers: dtype propagation, fp64 bit-identity, quantization.

The contracts under test (DESIGN.md "Precision & memory tiers"):

* fp64 is the default and stays **bit-identical** whether or not the
  buffer arena is active, and across a set-precision round trip;
* fp32 mode never silently upcasts — every intermediate and output of
  the GNN/CNN/fusion inference path is float32;
* int8 weight quantization round-trips through the artifact format
  verbatim (no requantization drift).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import ModelConfig, TimingPredictor, TrainerConfig
from repro.ml.batch import PackedBatch
from repro.nn import (
    Linear,
    PRECISIONS,
    Workspace,
    dequantize,
    inference_mode,
    quantize_per_channel,
    workspace,
)


@pytest.fixture(scope="module")
def fitted(tiny_samples):
    predictor = TimingPredictor(
        model_config=ModelConfig(map_bins=32),
        trainer_config=TrainerConfig(epochs=2))
    predictor.fit(tiny_samples)
    return predictor


# ----------------------------------------------------------------------
# Quantization scheme
# ----------------------------------------------------------------------
def test_quantize_per_channel_round_trip(rng):
    w = rng.normal(size=(6, 9))
    q = quantize_per_channel(w)
    assert q["q"].dtype == np.int8 and q["q"].shape == w.shape
    assert q["scale"].shape == (6,)
    back = dequantize(q["q"], q["scale"])
    # Per-channel symmetric int8: worst-case error is half a step.
    step = np.abs(w).max(axis=1) / 127.0
    assert np.all(np.abs(back - w) <= step[:, None] * 0.5 + 1e-12)


def test_quantize_zero_row_is_safe():
    w = np.zeros((2, 4))
    w[1] = [1.0, -2.0, 0.5, 0.25]
    q = quantize_per_channel(w)
    assert np.all(q["q"][0] == 0)
    np.testing.assert_array_equal(dequantize(q["q"], q["scale"])[0],
                                  np.zeros(4))


def test_requantization_is_install_verbatim(rng):
    """Artifact reload must not drift: install stored q/scale, not
    requantize the dequantized weights."""
    layer = Linear(5, 3, rng=rng)
    layer.set_inference_precision("int8")
    q1 = {k: np.array(v) for k, v in layer._quant.items()
          if k in ("q", "scale")}
    layer._install_quant(q1["q"], q1["scale"])
    np.testing.assert_array_equal(layer._quant["q"], q1["q"])
    np.testing.assert_array_equal(layer._quant["scale"], q1["scale"])


# ----------------------------------------------------------------------
# Module-tree precision switching
# ----------------------------------------------------------------------
def test_precision_walks_the_module_tree(fitted):
    model = fitted.model
    assert model.precision == "fp64"
    model.set_inference_precision("fp32")
    for module in model.modules():
        assert module.precision == "fp32"
    model.set_inference_precision("fp64")
    for module in model.modules():
        assert module.precision == "fp64"


def test_unknown_precision_rejected(fitted):
    with pytest.raises(ValueError):
        fitted.model.set_inference_precision("fp16")
    assert "fp16" not in PRECISIONS


def test_training_requires_fp64(fitted, tiny_samples):
    fitted.model.set_inference_precision("fp32")
    try:
        with pytest.raises(ValueError, match="fp64"):
            fitted.model.forward_batch(PackedBatch.pack(tiny_samples),
                                       training=True)
    finally:
        fitted.model.set_inference_precision("fp64")
        fitted.model.drain_caches()


# ----------------------------------------------------------------------
# dtype propagation (property test over the inference forwards)
# ----------------------------------------------------------------------
def _forward_dtypes(model, batch):
    """Run the packed inference forward recording every module output
    dtype (wrapping forward methods, no model changes)."""
    dtypes = []
    wrapped = []
    for module in model.modules():
        fwd = module.__dict__.get("forward", None)
        orig = module.forward

        def make(orig):
            def spy(*args, **kwargs):
                out = orig(*args, **kwargs)
                if isinstance(out, np.ndarray):
                    dtypes.append(out.dtype)
                return out
            return spy

        module.forward = make(orig)
        wrapped.append((module, fwd, orig))
    try:
        pred = model.forward_batch(batch, training=False)
    finally:
        for module, had, orig in wrapped:
            if had is None:
                module.__dict__.pop("forward", None)
            else:
                module.__dict__["forward"] = had
    model.drain_caches()
    return pred, dtypes


def test_fp32_never_upcasts(fitted, tiny_samples):
    batch = PackedBatch.pack(tiny_samples)
    fitted.model.set_inference_precision("fp32")
    try:
        pred, dtypes = _forward_dtypes(fitted.model, batch)
    finally:
        fitted.model.set_inference_precision("fp64")
    assert pred.dtype == np.float32
    assert dtypes, "spy saw no module outputs"
    assert all(dt == np.float32 for dt in dtypes), (
        f"fp32 inference silently upcast: {sorted(set(map(str, dtypes)))}")


def test_fp64_intermediates_are_fp64(fitted, tiny_samples):
    batch = PackedBatch.pack(tiny_samples)
    pred, dtypes = _forward_dtypes(fitted.model, batch)
    assert pred.dtype == np.float64
    assert all(dt == np.float64 for dt in dtypes)


def test_fp32_predictions_end_to_end(fitted, tiny_samples):
    ref = [np.array(a)
           for a in fitted.predict_batch_arrays(tiny_samples)]
    fitted.set_precision("fp32")
    try:
        out = fitted.predict_batch_arrays(tiny_samples)
        for a, b in zip(ref, out):
            assert np.asarray(b).dtype == np.float32
            np.testing.assert_allclose(np.asarray(b, dtype=np.float64),
                                       a, rtol=1e-4, atol=5e-2)
    finally:
        fitted.set_precision("fp64")


# ----------------------------------------------------------------------
# fp64 bit-identity invariants
# ----------------------------------------------------------------------
def test_fp64_identical_with_and_without_workspace(fitted, tiny_samples):
    fitted.use_workspace = False
    try:
        plain = [np.array(a)
                 for a in fitted.predict_batch_arrays(tiny_samples)]
    finally:
        fitted.use_workspace = True
    arena = fitted.predict_batch_arrays(tiny_samples)
    for a, b in zip(plain, arena):
        np.testing.assert_array_equal(np.asarray(b), a)


def test_fp64_identical_after_precision_round_trip(fitted, tiny_samples):
    ref = [np.array(a)
           for a in fitted.predict_batch_arrays(tiny_samples)]
    for mode in ("fp32", "int8", "fp64"):
        fitted.set_precision(mode)
    out = fitted.predict_batch_arrays(tiny_samples)
    for a, b in zip(ref, out):
        np.testing.assert_array_equal(np.asarray(b), a)


def test_workspace_reuse_across_forwards_stays_correct(fitted,
                                                       tiny_samples):
    """Repeat warm forwards must not read stale arena contents."""
    first = [np.array(a)
             for a in fitted.predict_batch_arrays(tiny_samples)]
    for _ in range(3):
        again = fitted.predict_batch_arrays(tiny_samples)
        for a, b in zip(first, again):
            np.testing.assert_array_equal(np.asarray(b), a)


def test_inference_mode_with_explicit_workspace(fitted, tiny_samples):
    """Direct model forwards under a caller-provided arena match the
    predictor path (same math, different buffer owner)."""
    batch = PackedBatch.pack(tiny_samples)
    with inference_mode():
        ref = np.array(fitted.model.forward_batch(batch, training=False))
        fitted.model.drain_caches()
    ws = Workspace()
    with inference_mode(), workspace(ws):
        out = fitted.model.forward_batch(batch, training=False)
        fitted.model.drain_caches()
        np.testing.assert_array_equal(np.asarray(out), ref)


# ----------------------------------------------------------------------
# Artifact round trip (schema v4)
# ----------------------------------------------------------------------
def test_int8_artifact_round_trip(fitted, tiny_samples):
    fitted.set_precision("int8")
    try:
        ref = [np.array(a)
               for a in fitted.predict_batch_arrays(tiny_samples)]
        payload = fitted.to_artifact()
        assert payload["schema_version"] == 4
        assert payload["precision"] == "int8"
        assert any(isinstance(e, dict) for e in payload["state"])
        clone = TimingPredictor.from_artifact(payload)
        assert clone.precision == "int8"
        out = clone.predict_batch_arrays(tiny_samples)
        for a, b in zip(ref, out):
            np.testing.assert_array_equal(np.asarray(b), a)
    finally:
        fitted.set_precision("fp64")


def test_fp64_artifact_round_trip_unchanged(fitted, tiny_samples):
    ref = [np.array(a)
           for a in fitted.predict_batch_arrays(tiny_samples)]
    clone = TimingPredictor.from_artifact(fitted.to_artifact())
    assert clone.precision == "fp64"
    out = clone.predict_batch_arrays(tiny_samples)
    for a, b in zip(ref, out):
        np.testing.assert_array_equal(np.asarray(b), a)
