"""Gradient and behaviour tests for dense layers."""

import numpy as np
import pytest

from repro.nn import (
    Flatten,
    Linear,
    ReLU,
    Sequential,
    Tanh,
    check_layer_gradients,
    mlp,
)


def test_linear_forward_shape(rng):
    layer = Linear(4, 6, rng=rng)
    out = layer.forward(rng.normal(size=(3, 4)))
    assert out.shape == (3, 6)


def test_linear_rejects_bad_shape(rng):
    layer = Linear(4, 6, rng=rng)
    with pytest.raises(ValueError):
        layer.forward(rng.normal(size=(3, 5)))


def test_linear_gradcheck(rng):
    check_layer_gradients(Linear(5, 3, rng=rng), rng.normal(size=(4, 5)))


def test_linear_no_bias(rng):
    layer = Linear(3, 2, rng=rng, bias=False)
    assert layer.bias is None
    check_layer_gradients(layer, rng.normal(size=(4, 3)))


def test_relu_gradcheck(rng):
    check_layer_gradients(ReLU(), rng.normal(size=(6, 4)) + 0.1)


def test_tanh_gradcheck(rng):
    check_layer_gradients(Tanh(), rng.normal(size=(6, 4)))


def test_flatten_roundtrip(rng):
    layer = Flatten()
    x = rng.normal(size=(2, 3, 4))
    out = layer.forward(x)
    assert out.shape == (2, 12)
    back = layer.backward(out)
    assert back.shape == x.shape


def test_sequential_gradcheck(rng):
    net = Sequential(Linear(5, 8, rng=rng), ReLU(), Linear(8, 2, rng=rng))
    check_layer_gradients(net, rng.normal(size=(3, 5)))


def test_mlp_builder_structure(rng):
    net = mlp([4, 16, 16, 1], rng)
    linears = [l for l in net.layers if isinstance(l, Linear)]
    assert len(linears) == 3
    assert linears[0].weight.shape == (16, 4)
    assert linears[-1].weight.shape == (1, 16)


def test_lifo_cache_supports_multiple_forwards(rng):
    """A layer applied twice must backprop in reverse call order."""
    layer = Linear(3, 3, rng=rng)
    x1 = rng.normal(size=(2, 3))
    x2 = rng.normal(size=(2, 3))
    out1 = layer.forward(x1)
    out2 = layer.forward(x2)
    g2 = layer.backward(np.ones_like(out2))
    g1 = layer.backward(np.ones_like(out1))
    # dx = g @ W in both cases; cache order must not mix x1/x2 for dW.
    expected_dw = np.ones_like(out1).T @ x2 + np.ones_like(out1).T @ x1
    np.testing.assert_allclose(layer.weight.grad, expected_dw)
    np.testing.assert_allclose(g1, g2)  # same upstream grad, same W


def test_zero_grad(rng):
    layer = Linear(3, 3, rng=rng)
    out = layer.forward(rng.normal(size=(2, 3)))
    layer.backward(out)
    assert np.abs(layer.weight.grad).sum() > 0
    layer.zero_grad()
    assert np.abs(layer.weight.grad).sum() == 0
