"""Tests for parameter discovery and state save/load."""

import numpy as np
import pytest

from repro.nn import (
    Linear,
    Module,
    Parameter,
    ReLU,
    Sequential,
    load_state_dict,
    state_dict,
)


class Composite(Module):
    def __init__(self, rng):
        self.head = Linear(4, 2, rng=rng)
        self.blocks = [Linear(4, 4, rng=rng), Linear(4, 4, rng=rng)]
        self.scale = Parameter(np.ones(1))


def test_parameters_discovered_recursively(rng):
    m = Composite(rng)
    # head (W, b) + 2 blocks × (W, b) + scale
    assert len(m.parameters()) == 7


def test_modules_iterates_children(rng):
    m = Composite(rng)
    kinds = [type(x).__name__ for x in m.modules()]
    assert kinds.count("Linear") == 3


def test_state_dict_roundtrip(rng):
    a = Sequential(Linear(3, 4, rng=rng), ReLU(), Linear(4, 1, rng=rng))
    b = Sequential(Linear(3, 4, rng=np.random.default_rng(99)), ReLU(),
                   Linear(4, 1, rng=np.random.default_rng(99)))
    x = rng.normal(size=(2, 3))
    assert not np.allclose(a.forward(x), b.forward(x))
    load_state_dict(b, state_dict(a))
    np.testing.assert_allclose(a.forward(x), b.forward(x))


def test_load_state_dict_shape_mismatch(rng):
    a = Linear(3, 4, rng=rng)
    b = Linear(3, 5, rng=rng)
    with pytest.raises(ValueError):
        load_state_dict(b, state_dict(a))


def test_load_state_dict_length_mismatch(rng):
    a = Linear(3, 4, rng=rng)
    with pytest.raises(ValueError):
        load_state_dict(a, state_dict(a)[:1])
