"""Gradient and behaviour tests for conv/pool layers."""

import numpy as np
import pytest

from repro.nn import Conv2d, MaxPool2d, check_layer_gradients


def test_conv_output_shape(rng):
    conv = Conv2d(3, 5, 3, padding=1, rng=rng)
    out = conv.forward(rng.normal(size=(2, 3, 8, 8)))
    assert out.shape == (2, 5, 8, 8)


def test_conv_no_padding_shrinks(rng):
    conv = Conv2d(1, 1, 3, padding=0, rng=rng)
    out = conv.forward(rng.normal(size=(1, 1, 8, 8)))
    assert out.shape == (1, 1, 6, 6)


def test_conv_rejects_wrong_channels(rng):
    conv = Conv2d(3, 5, 3, rng=rng)
    with pytest.raises(ValueError):
        conv.forward(rng.normal(size=(1, 2, 8, 8)))


def test_conv_gradcheck(rng):
    check_layer_gradients(Conv2d(2, 3, 3, padding=1, rng=rng),
                          rng.normal(size=(2, 2, 5, 5)))


def test_conv_1x1_gradcheck(rng):
    check_layer_gradients(Conv2d(4, 1, 1, rng=rng),
                          rng.normal(size=(1, 4, 6, 6)))


def test_conv_matches_manual_convolution(rng):
    """One output pixel checked against a hand-rolled dot product."""
    conv = Conv2d(2, 1, 3, padding=0, rng=rng)
    x = rng.normal(size=(1, 2, 5, 5))
    out = conv.forward(x)
    manual = (conv.weight.data[0] * x[0, :, 1:4, 2:5]).sum() \
        + conv.bias.data[0]
    assert out[0, 0, 1, 2] == pytest.approx(manual)


def test_maxpool_forward(rng):
    pool = MaxPool2d(2)
    x = np.arange(16.0).reshape(1, 1, 4, 4)
    out = pool.forward(x)
    np.testing.assert_array_equal(out[0, 0], [[5, 7], [13, 15]])


def test_maxpool_gradcheck(rng):
    check_layer_gradients(MaxPool2d(2), rng.normal(size=(2, 2, 4, 4)))


def test_maxpool_requires_divisible(rng):
    with pytest.raises(ValueError):
        MaxPool2d(2).forward(rng.normal(size=(1, 1, 5, 4)))


def test_maxpool_routes_gradient_to_argmax():
    pool = MaxPool2d(2)
    x = np.zeros((1, 1, 2, 2))
    x[0, 0, 1, 1] = 5.0
    pool.forward(x)
    grad = pool.backward(np.ones((1, 1, 1, 1)))
    assert grad[0, 0, 1, 1] == 1.0
    assert grad.sum() == 1.0
