"""Golden regression lockdown of the end-to-end flow numerics.

``golden_xgate.json`` pins ``wns``, ``tns``, the derived clock period and
five sampled endpoint slacks of the seeded small design.  Any drift in
placer, optimizer, router, STA or library characterization trips this
test.  After an *intentional* numerics change, regenerate with::

    PYTHONPATH=src python scripts/regen_golden.py

and commit the updated JSON alongside the change (see the script's
docstring).  The flow must also be run-to-run deterministic: two fresh
runs from the same seed have to agree bit-for-bit.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

GOLDEN = Path(__file__).parent / "golden_xgate.json"
TOL = 1e-6


@pytest.fixture(scope="module")
def golden() -> dict:
    with open(GOLDEN, "r", encoding="utf-8") as fh:
        return json.load(fh)


def test_signoff_matches_golden(tiny_flow, golden):
    # tiny_flow is run_flow("xgate", FlowConfig(scale=0.25)) — the golden
    # configuration (scripts/regen_golden.py).
    sta = tiny_flow.signoff_sta
    assert tiny_flow.clock_period == pytest.approx(
        golden["clock_period"], abs=TOL)
    assert len(sta.endpoint_slack) == golden["n_endpoints"]
    assert sta.wns == pytest.approx(golden["wns"], abs=TOL)
    assert sta.tns == pytest.approx(golden["tns"], abs=TOL)
    for pin_str, slack in golden["sampled_endpoint_slack"].items():
        pid = int(pin_str)
        assert pid in sta.endpoint_slack, f"endpoint {pid} disappeared"
        assert sta.endpoint_slack[pid] == pytest.approx(slack, abs=TOL), \
            f"endpoint {pid} slack drifted"


def test_flow_is_deterministic(tiny_flow):
    """A second fresh run from the same seed reproduces the first exactly."""
    from repro.flow import FlowConfig, run_flow

    rerun = run_flow("xgate", FlowConfig(scale=0.25))
    first = tiny_flow.signoff_sta
    second = rerun.signoff_sta
    assert rerun.clock_period == tiny_flow.clock_period
    assert second.endpoint_slack == first.endpoint_slack
    assert second.endpoint_arrival == first.endpoint_arrival


def test_golden_matches_regen_script(tiny_flow, golden):
    """The checked-in file is exactly what the regen script would write."""
    import sys
    sys.path.insert(0, str(Path(__file__).resolve().parents[2] / "scripts"))
    try:
        import regen_golden
    finally:
        sys.path.pop(0)
    fresh = regen_golden.compute_golden()
    assert fresh["n_endpoints"] == golden["n_endpoints"]
    assert fresh["wns"] == pytest.approx(golden["wns"], abs=TOL)
    assert set(fresh["sampled_endpoint_slack"]) == set(
        golden["sampled_endpoint_slack"])
