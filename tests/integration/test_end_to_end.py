"""Integration tests: the full pipeline from netlist to prediction."""

import numpy as np
import pytest

from repro.baselines import TwoStageBaseline, TwoStageConfig
from repro.core import ModelConfig, TimingPredictor, TrainerConfig
from repro.eval import r2_score
from repro.flow import FlowConfig, run_flow
from repro.ml import build_sample


@pytest.fixture(scope="module")
def pipeline():
    """Two small flows + samples, one for training, one held out."""
    train_flow = run_flow("steelcore", FlowConfig(scale=0.5))
    test_flow = run_flow("xgate", FlowConfig(scale=0.5))
    return (build_sample(train_flow), build_sample(test_flow))


def test_full_model_learns_heldout_structure(pipeline):
    train, test = pipeline
    predictor = TimingPredictor(
        model_config=ModelConfig(variant="full"),
        trainer_config=TrainerConfig(epochs=50))
    predictor.fit([train])
    pred = predictor.predict_array(test)
    # Cross-design generalization from one tiny design is noisy; demand
    # strong rank correlation rather than a high R².
    assert np.corrcoef(pred, test.y)[0, 1] > 0.7


def test_predictor_roundtrip_through_preprocess(pipeline):
    train, _ = pipeline
    predictor = TimingPredictor(
        model_config=ModelConfig(variant="gnn"),
        trainer_config=TrainerConfig(epochs=10))
    predictor.fit([train])
    flow = run_flow("xgate", FlowConfig(scale=0.5))
    sample = predictor.preprocess(flow)
    by_pin = predictor.predict(sample)
    assert set(by_pin) == set(flow.input_netlist.endpoint_pins())


def test_baseline_and_ours_on_same_data(pipeline):
    train, test = pipeline
    baseline = TwoStageBaseline(TwoStageConfig(epochs=60))
    baseline.fit([train])
    ours = TimingPredictor(
        model_config=ModelConfig(variant="full"),
        trainer_config=TrainerConfig(epochs=50))
    ours.fit([train])
    r2_base = r2_score(test.y, baseline.predict_endpoint_arrival(test))
    r2_ours = r2_score(test.y, ours.predict_array(test))
    # Both produce finite predictions on the held-out design; record the
    # comparison (the Table II benchmark asserts the ordering at scale).
    assert np.isfinite(r2_base) and np.isfinite(r2_ours)


def test_seed_changes_dataset_but_not_interface():
    a = run_flow("xgate", FlowConfig(scale=0.3, base_seed=0))
    b = run_flow("xgate", FlowConfig(scale=0.3, base_seed=1))
    la, lb = a.endpoint_labels(), b.endpoint_labels()
    # Same spec, different seed: structurally similar but distinct data.
    assert abs(len(la) - len(lb)) < 0.3 * len(la)
    assert sorted(la.values()) != sorted(lb.values())


def test_flow_stage_times_feed_table3(pipeline):
    train, _ = pipeline
    assert train.flow_times.get("opt", 0) > 0
    assert train.flow_times.get("route", 0) > 0
    assert train.flow_times.get("sta", 0) > 0
    assert train.preprocess_time > 0
