"""Integration: Verilog + DEF + SDC interchange preserves timing."""

import io

import pytest

from repro.netlist import parse_verilog, write_verilog
from repro.placement.defio import read_def, write_def
from repro.timing import (
    PreRouteEstimator,
    TimingConstraints,
    build_timing_graph,
    parse_sdc,
    run_sta,
)


def test_full_interchange_roundtrip(tiny_placed):
    nl, pl = tiny_placed
    v_buf, d_buf = io.StringIO(), io.StringIO()
    write_verilog(nl, v_buf)
    write_def(nl, pl, d_buf)
    constraints = TimingConstraints(clock_period=900.0,
                                    input_delays={None: 12.0})
    sdc = constraints.to_sdc()

    nl2 = parse_verilog(v_buf.getvalue())
    pl2 = read_def(nl2, d_buf.getvalue())
    c2 = parse_sdc(sdc)
    assert c2 == constraints

    r1 = run_sta(build_timing_graph(nl), PreRouteEstimator(nl, pl),
                 900.0, constraints=constraints)
    r2 = run_sta(build_timing_graph(nl2), PreRouteEstimator(nl2, pl2),
                 900.0, constraints=c2)
    # DEF quantizes to 1e-3 µm; timing must agree to sub-0.1 ps.
    assert r1.wns == pytest.approx(r2.wns, abs=0.1)
    assert r1.tns == pytest.approx(r2.tns, abs=1.0)
