"""Tests for validation helpers."""

import pytest

from repro.utils import require, require_positive


def test_require_passes():
    require(True, "never raised")


def test_require_raises_with_message():
    with pytest.raises(ValueError, match="broken invariant"):
        require(False, "broken invariant")


@pytest.mark.parametrize("value", [1, 0.5, 1e-9])
def test_require_positive_accepts(value):
    require_positive(value, "v")


@pytest.mark.parametrize("value", [0, -1, -0.5])
def test_require_positive_rejects(value):
    with pytest.raises(ValueError, match="v must be positive"):
        require_positive(value, "v")
