"""Tests for deterministic RNG helpers."""

import numpy as np
from hypothesis import given
from hypothesis import strategies as st

from repro.utils import seed_from_name, spawn_rng


def test_seed_is_stable():
    assert seed_from_name("netlist/rocket") == seed_from_name("netlist/rocket")


def test_seed_differs_by_name():
    assert seed_from_name("a") != seed_from_name("b")


def test_seed_differs_by_base_seed():
    assert seed_from_name("a", 0) != seed_from_name("a", 1)


def test_spawn_rng_reproducible():
    a = spawn_rng("x").normal(size=5)
    b = spawn_rng("x").normal(size=5)
    np.testing.assert_array_equal(a, b)


def test_spawn_rng_independent_streams():
    a = spawn_rng("x").normal(size=5)
    b = spawn_rng("y").normal(size=5)
    assert not np.allclose(a, b)


@given(st.text(max_size=50), st.integers(min_value=0, max_value=2**31))
def test_seed_in_valid_range(name, base):
    seed = seed_from_name(name, base)
    assert 0 <= seed < 2**63
