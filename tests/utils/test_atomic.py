"""Atomic persistence helpers and the benchmark emitter built on them."""

from __future__ import annotations

import json
import logging
import os

import pytest

from repro.utils import (
    atomic_json_dump,
    atomic_pickle_dump,
    load_json_or_none,
    load_pickle_or_none,
)


def test_json_round_trip(tmp_path):
    path = tmp_path / "out.json"
    atomic_json_dump({"b": 2, "a": [1, 2.5, None]}, path)
    assert load_json_or_none(path) == {"a": [1, 2.5, None], "b": 2}
    # Deterministic serialization: sorted keys, trailing newline.
    text = path.read_text()
    assert text.endswith("\n")
    assert text.index('"a"') < text.index('"b"')


def test_json_missing_file_is_none(tmp_path):
    assert load_json_or_none(tmp_path / "absent.json") is None


def test_json_corrupt_file_warns_and_unlinks(tmp_path, caplog):
    path = tmp_path / "bad.json"
    path.write_text("{ truncated")
    logger = logging.getLogger("test.atomic")
    with caplog.at_level(logging.WARNING, logger="test.atomic"):
        assert load_json_or_none(path, logger) is None
    assert "discarding corrupt cache file" in caplog.text
    assert not path.exists(), "corrupt file must be removed"


def test_json_overwrite_replaces_not_merges(tmp_path):
    path = tmp_path / "out.json"
    atomic_json_dump({"old": 1}, path)
    atomic_json_dump({"new": 2}, path)
    assert load_json_or_none(path) == {"new": 2}


def test_json_failed_dump_leaves_no_temp_files(tmp_path):
    path = tmp_path / "out.json"
    atomic_json_dump({"ok": 1}, path)
    with pytest.raises(TypeError):
        atomic_json_dump({"bad": object()}, path)
    assert load_json_or_none(path) == {"ok": 1}  # prior version intact
    assert os.listdir(tmp_path) == ["out.json"]  # temp file cleaned up


def test_pickle_corrupt_file_is_a_miss(tmp_path):
    path = tmp_path / "bad.pkl"
    atomic_pickle_dump([1, 2, 3], path)
    assert load_pickle_or_none(path) == [1, 2, 3]
    path.write_bytes(b"\x80not a pickle")
    assert load_pickle_or_none(path) is None
    assert not path.exists()


# ----------------------------------------------------------------------
# emit_bench: atomic artifact writes + corrupt-file recovery
# ----------------------------------------------------------------------
@pytest.fixture
def bench_out(tmp_path, monkeypatch):
    import benchmarks.conftest as bc

    monkeypatch.setattr(bc, "BENCH_OUT", tmp_path)
    return bc


def test_emit_bench_writes_valid_json(bench_out):
    path = bench_out.emit_bench("unit", {"speedup": 2.5})
    data = json.loads(path.read_text())
    assert data["bench"] == "unit"
    assert data["speedup"] == 2.5
    assert "history" not in data  # first write has no prior run


def test_emit_bench_carries_history_forward(bench_out):
    bench_out.emit_bench("unit", {"speedup": 1.0})
    path = bench_out.emit_bench("unit", {"speedup": 2.0})
    data = json.loads(path.read_text())
    assert data["speedup"] == 2.0
    assert [h["speedup"] for h in data["history"]] == [1.0]
    # History is bounded: repeated runs never grow without limit.
    for i in range(bench_out.BENCH_HISTORY + 3):
        path = bench_out.emit_bench("unit", {"speedup": float(i)})
    data = json.loads(path.read_text())
    assert len(data["history"]) == bench_out.BENCH_HISTORY


def test_emit_bench_overwrites_corrupt_artifact(bench_out, caplog):
    path = bench_out.BENCH_OUT / "BENCH_unit.json"
    path.write_text('{"speedup": 1.0, "trunc')
    with caplog.at_level(logging.WARNING):
        out = bench_out.emit_bench("unit", {"speedup": 3.0})
    assert "discarding corrupt cache file" in caplog.text
    data = json.loads(out.read_text())
    assert data["speedup"] == 3.0
    assert "history" not in data  # corrupt prior contributes nothing
