"""Tests for the logging helper."""

import logging

from repro.utils import get_logger


def test_logger_namespaced_under_repro():
    assert get_logger("foo").name == "repro.foo"
    assert get_logger("repro.bar").name == "repro.bar"


def test_root_handler_configured_once():
    get_logger("a")
    get_logger("b")
    root = logging.getLogger("repro")
    assert len(root.handlers) == 1


def test_child_loggers_propagate_to_root():
    logger = get_logger("child.module")
    assert logger.propagate
    assert logging.getLogger("repro").level == logging.WARNING \
        or logging.getLogger("repro").level == logging.INFO
