"""Tests for the logging helper (handler dedup, env level, trace routing)."""

import logging

from repro.utils import configure_logging, get_logger
from repro.utils.log import _ReproLogHandler


def _managed(root: logging.Logger):
    return [h for h in root.handlers if getattr(h, "_repro_managed", False)]


def test_logger_namespaced_under_repro():
    assert get_logger("foo").name == "repro.foo"
    assert get_logger("repro.bar").name == "repro.bar"


def test_single_handler_invariant_under_repeated_configuration():
    """Any number of configure/get calls keeps exactly one managed handler."""
    root = configure_logging()
    for _ in range(5):
        get_logger("a")
        configure_logging()
    assert len(_managed(root)) == 1
    configure_logging(force=True)
    assert len(_managed(root)) == 1


def test_duplicate_managed_handlers_are_pruned():
    """Even if a stale handler sneaks in (old sessions, reloads), the next
    configuration call removes the duplicate."""
    root = logging.getLogger("repro")
    configure_logging()
    root.addHandler(_ReproLogHandler())       # simulate the old bug
    assert len(_managed(root)) == 2
    configure_logging()
    assert len(_managed(root)) == 1


def test_foreign_handlers_untouched():
    """Dedup only manages our own handler — pytest's caplog etc. survive."""
    root = logging.getLogger("repro")
    foreign = logging.NullHandler()
    root.addHandler(foreign)
    try:
        configure_logging()
        assert foreign in root.handlers
    finally:
        root.removeHandler(foreign)


def test_env_level_override(monkeypatch):
    monkeypatch.setenv("REPRO_LOG_LEVEL", "DEBUG")
    root = configure_logging(force=True)
    assert root.level == logging.DEBUG
    monkeypatch.setenv("REPRO_LOG_LEVEL", "ERROR")
    root = configure_logging(force=True)
    assert root.level == logging.ERROR
    monkeypatch.delenv("REPRO_LOG_LEVEL")
    root = configure_logging(force=True)
    assert root.level == logging.WARNING


def test_unknown_env_level_falls_back_to_warning(monkeypatch):
    monkeypatch.setenv("REPRO_LOG_LEVEL", "NOT_A_LEVEL")
    root = configure_logging(force=True)
    assert root.level == logging.WARNING


def test_explicit_level_argument_wins(monkeypatch):
    monkeypatch.setenv("REPRO_LOG_LEVEL", "ERROR")
    root = configure_logging(level="INFO", force=True)
    assert root.level == logging.INFO


def test_records_routed_into_tracer():
    """With tracing enabled, a warning surfaces as a trace 'log' event."""
    from repro.obs.trace import get_tracer

    tracer = get_tracer()
    was_enabled = tracer.enabled
    tracer.enable()
    try:
        configure_logging(force=True)
        get_logger("route.test").warning("congestion %d", 7)
        events = [ev for ev in tracer.events()
                  if ev["name"] == "log"
                  and ev["attrs"].get("logger") == "repro.route.test"]
        assert events, "log record should appear in the trace"
        assert events[-1]["attrs"]["message"] == "congestion 7"
        assert events[-1]["attrs"]["level"] == "WARNING"
    finally:
        tracer.reset()
        if not was_enabled:
            tracer.disable()


def test_child_loggers_propagate_to_root():
    logger = get_logger("child.module")
    assert logger.propagate
