"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


def test_parser_knows_all_commands():
    parser = build_parser()
    for cmd in ("flow", "report", "dataset", "train", "predict",
                "profile", "table1", "table2", "table3"):
        args = parser.parse_args([cmd] + (
            ["xgate"] if cmd in ("flow", "report", "predict") else []))
        assert args.command == cmd


def test_cli_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_cli_flow_runs(capsys):
    assert main(["flow", "xgate", "--scale", "0.2"]) == 0
    out = capsys.readouterr().out
    assert "sign-off" in out
    assert "replaced" in out


def test_cli_flow_no_opt(capsys):
    assert main(["flow", "xgate", "--scale", "0.2", "--no-opt"]) == 0
    out = capsys.readouterr().out
    assert "optimizer" not in out


def test_cli_report_runs(capsys):
    assert main(["report", "xgate", "--scale", "0.2", "--paths", "2"]) == 0
    out = capsys.readouterr().out
    assert out.count("Endpoint:") == 2
    assert "WNS" in out


def test_cli_train_and_predict(tmp_path, capsys, monkeypatch):
    # Patch the training design list down to one tiny design for speed.
    import repro.cli as cli_mod
    import repro.netlist as netlist_mod

    monkeypatch.setattr("repro.cli.DEFAULT_CACHE", tmp_path)
    small = netlist_mod.DESIGN_PRESETS["xgate"].scaled(0.2)
    monkeypatch.setitem(netlist_mod.DESIGN_PRESETS, "xgate", small)
    monkeypatch.setattr("repro.netlist.TRAIN_DESIGNS", ("xgate",))

    model_path = tmp_path / "m.pkl"
    assert main(["train", "--variant", "gnn", "--epochs", "3",
                 "--out", str(model_path), "--cache", str(tmp_path)]) == 0
    assert model_path.exists()
    assert main(["predict", "xgate", "--model", str(model_path),
                 "--cache", str(tmp_path), "--top", "3"]) == 0
    out = capsys.readouterr().out
    assert "predicted arrival" in out


def test_cli_profile_runs(tmp_path, capsys):
    trace = tmp_path / "trace.jsonl"
    report = tmp_path / "report.json"
    assert main(["profile", "--design", "xgate", "--scale", "0.2",
                 "--epochs", "1", "--trace-out", str(trace),
                 "--report-out", str(report)]) == 0
    out = capsys.readouterr().out
    # Every flow stage and both predictor stages must appear in the report.
    for stage in ("flow.place", "flow.opt", "flow.route", "flow.sta",
                  "model.pre", "model.infer"):
        assert stage in out
    assert "speedup" in out
    assert trace.exists() and report.exists()

    import json
    payload = json.loads(report.read_text())
    row = payload["table3"][0]
    assert row["design"] == "xgate"
    for stage in ("flow.place", "flow.opt", "flow.route", "flow.sta",
                  "model.pre", "model.infer"):
        assert row[stage] > 0.0
    # Trace file is valid JSONL with span events.
    lines = [json.loads(ln) for ln in
             trace.read_text().strip().splitlines()]
    assert any(ev["name"] == "flow.sta" for ev in lines)

    # Leave the global tracer as the rest of the suite expects it.
    from repro.obs.trace import get_tracer
    get_tracer().reset()
    get_tracer().disable()
