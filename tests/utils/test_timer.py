"""Tests for stopwatches."""

import time

from repro.utils import StageTimer, Stopwatch


def test_stopwatch_accumulates():
    sw = Stopwatch()
    with sw.running():
        time.sleep(0.01)
    first = sw.elapsed
    with sw.running():
        time.sleep(0.01)
    assert sw.elapsed > first >= 0.01


def test_stage_timer_records_stages():
    timer = StageTimer()
    with timer.stage("a"):
        time.sleep(0.005)
    with timer.stage("b"):
        pass
    assert timer.get("a") >= 0.005
    assert timer.get("b") >= 0.0
    assert timer.get("missing") == 0.0
    assert timer.total() == timer.get("a") + timer.get("b")


def test_stage_timer_accumulates_same_stage():
    timer = StageTimer()
    with timer.stage("x"):
        time.sleep(0.003)
    first = timer.get("x")
    with timer.stage("x"):
        time.sleep(0.003)
    assert timer.get("x") > first


def test_stage_timer_records_on_exception():
    timer = StageTimer()
    try:
        with timer.stage("fail"):
            raise RuntimeError("boom")
    except RuntimeError:
        pass
    assert timer.get("fail") >= 0.0
    assert "fail" in timer.stages
