"""Tests for stopwatches."""

import time

import pytest

from repro.utils import StageTimer, Stopwatch


def test_stopwatch_accumulates():
    sw = Stopwatch()
    with sw.running():
        time.sleep(0.01)
    first = sw.elapsed
    with sw.running():
        time.sleep(0.01)
    assert sw.elapsed > first >= 0.01


def test_stage_timer_records_stages():
    timer = StageTimer()
    with timer.stage("a"):
        time.sleep(0.005)
    with timer.stage("b"):
        pass
    assert timer.get("a") >= 0.005
    assert timer.get("b") >= 0.0
    assert timer.get("missing") == 0.0
    assert timer.total() == timer.get("a") + timer.get("b")


def test_stage_timer_accumulates_same_stage():
    timer = StageTimer()
    with timer.stage("x"):
        time.sleep(0.003)
    first = timer.get("x")
    with timer.stage("x"):
        time.sleep(0.003)
    assert timer.get("x") > first


def test_stage_timer_records_on_exception():
    timer = StageTimer()
    try:
        with timer.stage("fail"):
            raise RuntimeError("boom")
    except RuntimeError:
        pass
    assert timer.get("fail") >= 0.0
    assert "fail" in timer.stages


def test_stage_timer_nested_stages_accumulate_independently():
    """Nested stages each record their own wall-clock; the outer stage's
    time includes the inner stage's (the spans nest, the dict does not
    subtract)."""
    timer = StageTimer()
    with timer.stage("outer"):
        time.sleep(0.004)
        with timer.stage("inner"):
            time.sleep(0.004)
    assert timer.get("inner") >= 0.004
    assert timer.get("outer") >= timer.get("inner")
    assert set(timer.stages) == {"outer", "inner"}


def test_stage_timer_reentered_stage_accumulates():
    """Re-entering the same stage name (even nested under itself) adds up."""
    timer = StageTimer()
    with timer.stage("sta"):
        time.sleep(0.002)
    with timer.stage("sta"):
        time.sleep(0.002)
        with timer.stage("sta"):
            time.sleep(0.002)
    # 3 closed blocks: ~2ms + ~4ms(outer incl. inner) + ~2ms(inner)
    assert timer.get("sta") >= 0.008


def test_stage_timer_emits_spans_when_tracing(monkeypatch):
    from repro.obs.trace import Tracer
    import repro.utils.timer as timer_mod

    tracer = Tracer(enabled=True)
    monkeypatch.setattr(timer_mod, "get_tracer", lambda: tracer)
    timer = StageTimer(design="xgate")
    with timer.stage("place"):
        pass
    (ev,) = tracer.events()
    assert ev["name"] == "flow.place"
    assert ev["attrs"] == {"stage": "place", "design": "xgate"}
    assert ev["dur"] == pytest.approx(timer.get("place"), abs=1e-4)


def test_stage_timer_adapter_matches_span_duration(monkeypatch):
    """The legacy dict is fed from the span's own measurement, so the two
    never disagree (no double timing)."""
    from repro.obs.trace import Tracer
    import repro.utils.timer as timer_mod

    tracer = Tracer(enabled=True)
    monkeypatch.setattr(timer_mod, "get_tracer", lambda: tracer)
    timer = StageTimer()
    with timer.stage("route"):
        time.sleep(0.003)
    (ev,) = tracer.events()
    assert timer.get("route") == ev["dur"]
